// Package chaos is the fault-injection harness behind the containment and
// serving-robustness tests. An Injector produces a hook the core runtime
// invokes on the executing delegate immediately before every delegated
// method runs (Config.FaultInjector); when the injector's trigger condition
// holds, the hook panics with a Fault value, exercising the
// recover/poison/report machinery exactly where a user operation would have
// faulted.
//
// Beyond panics, the package provides the degraded-downstream injectors the
// serving tier's backend seam consumes: Latency (deterministic delay
// spikes), Errors (deterministic backend failures, the retry/breaker
// exercise), and Flap (a contiguous outage window over a backend's own
// operation sequence, the circuit-breaker open/half-open/recover exercise).
// All of them share the panic injectors' determinism discipline: triggers
// are pure functions of (seed, set, per-set position) or of the injector's
// own operation count, never of wall-clock time or a global RNG, so a chaos
// profile replays identically run over run.
//
// Two triggers are provided. PanicAt fires at the Nth operation of one
// chosen set and is fully deterministic: because the serialization-set
// invariant runs a set's operations one at a time in delegation order, the
// per-set counter the injector keeps observes the same sequence on every
// run regardless of scheduling, stealing, or engine mode — which is what
// lets the chaos tests demand byte-identical poisoning points across runs.
// Seeded fires pseudo-randomly from a seed and a per-(set, position) mix,
// for survival stress where the interesting property is "the process never
// dies or wedges", not "the same op faults every time". Note Seeded is
// deterministic per (set, position) too — the mix has no global state — so
// repeated runs of the same workload inject the same faults even though
// the faults look scattered.
//
// The injector fires before the user method is invoked, so a faulted
// operation contributes none of its side effects: the surviving prefix of
// a poisoned set's log is exactly operations 1..N-1, with nothing partial
// from operation N.
package chaos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Fault is the value injected panics carry. It is a comparable error, so
// tests can assert errors.Is(err, chaos.Fault{Set: s, N: n}) against the
// runtime's reported fault chain.
type Fault struct {
	// Set is the serialization set whose operation was made to panic.
	Set uint64
	// N is the 1-based position of the faulted operation within its set's
	// delegation order.
	N uint64
}

func (f Fault) Error() string {
	return fmt.Sprintf("chaos: injected panic at op %d of set %d", f.N, f.Set)
}

// Injector counts operations per set and panics when its trigger decides
// an operation should fault. Safe for concurrent use by every delegate.
type Injector struct {
	mu     sync.Mutex
	counts map[uint64]uint64
	fired  uint64
	// trigger reports whether the nth (1-based) operation of set should
	// fault. Called under mu.
	trigger func(set, n uint64) bool
}

// PanicAt returns an injector that panics at the nth (1-based) operation
// delegated to set, once. Every other operation passes through untouched.
func PanicAt(set, n uint64) *Injector {
	return &Injector{
		counts: make(map[uint64]uint64),
		trigger: func(s, k uint64) bool {
			return s == set && k == n
		},
	}
}

// Seeded returns an injector that panics on roughly fraction p of
// operations, chosen by mixing seed with the operation's (set, position)
// coordinate. Deterministic for a fixed seed and workload; different seeds
// scatter the faults differently.
func Seeded(seed uint64, p float64) *Injector {
	thr := probThreshold(p)
	return &Injector{
		counts: make(map[uint64]uint64),
		trigger: func(s, k uint64) bool {
			return (mix(seed, s, k) >> 1) < thr
		},
	}
}

// Hook returns the function to install as Config.FaultInjector. The hook
// panics with a Fault value when the trigger fires.
func (in *Injector) Hook() func(ctx int, set uint64) {
	return func(ctx int, set uint64) {
		in.mu.Lock()
		in.counts[set]++
		n := in.counts[set]
		fire := in.trigger(set, n)
		if fire {
			in.fired++
		}
		in.mu.Unlock()
		if fire {
			panic(Fault{Set: set, N: n})
		}
	}
}

// Fired reports how many panics the injector has raised.
func (in *Injector) Fired() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Reset clears the per-set counters (the fired total is kept), so one
// injector can be reused across isolation epochs with per-epoch positions.
func (in *Injector) Reset() {
	in.mu.Lock()
	clear(in.counts)
	in.mu.Unlock()
}

// Injected is the error value the Errors injector returns (and the value a
// chaos-wrapped backend surfaces). It is comparable, so tests can assert
// errors.Is against an exact (set, position) coordinate.
type Injected struct {
	// Set is the serialization set whose operation was failed.
	Set uint64
	// N is the 1-based position of the failed operation within the
	// injector's per-set count.
	N uint64
}

func (e Injected) Error() string {
	return fmt.Sprintf("chaos: injected error at op %d of set %d", e.N, e.Set)
}

// Latency injects deterministic delays: each Delay call counts one
// operation of its set and returns the configured duration when the
// trigger fires, zero otherwise. The caller performs the sleep (the
// serving tier's chaos backend sleeps under the request's deadline
// context, so a spike longer than the remaining budget resolves as a
// timeout, not a wedge).
type Latency struct {
	mu      sync.Mutex
	counts  map[uint64]uint64
	d       time.Duration
	fired   uint64
	trigger func(set, n uint64) bool
}

// SpikeEvery returns a latency injector that delays every kth operation of
// each set by d — the "periodic latency spike" profile. k <= 1 delays every
// operation.
func SpikeEvery(k uint64, d time.Duration) *Latency {
	if k < 1 {
		k = 1
	}
	return &Latency{
		counts:  make(map[uint64]uint64),
		d:       d,
		trigger: func(_, n uint64) bool { return n%k == 0 },
	}
}

// SeededLatency returns a latency injector that delays roughly fraction p
// of operations by d, chosen by the same seeded (set, position) mix the
// panic injector uses — scattered but fully deterministic per seed.
func SeededLatency(seed uint64, p float64, d time.Duration) *Latency {
	thr := probThreshold(p)
	return &Latency{
		counts:  make(map[uint64]uint64),
		d:       d,
		trigger: func(s, k uint64) bool { return (mix(seed, s, k) >> 1) < thr },
	}
}

// Delay counts one operation of set and returns the delay to apply to it
// (zero for untouched operations). Safe for concurrent use.
func (l *Latency) Delay(set uint64) time.Duration {
	l.mu.Lock()
	l.counts[set]++
	n := l.counts[set]
	fire := l.trigger(set, n)
	if fire {
		l.fired++
	}
	l.mu.Unlock()
	if fire {
		return l.d
	}
	return 0
}

// Fired reports how many delays the injector has issued.
func (l *Latency) Fired() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fired
}

// Errors injects deterministic backend failures: each Err call counts one
// operation of its set and returns an Injected error when the trigger
// fires, nil otherwise. This is the retry-path exercise — an injected
// error is transient by construction (the next position rolls a fresh
// coin), so a retried operation usually succeeds.
type Errors struct {
	mu      sync.Mutex
	counts  map[uint64]uint64
	fired   uint64
	trigger func(set, n uint64) bool
}

// SeededErrors returns an error injector that fails roughly fraction p of
// operations, deterministic per (seed, set, position).
func SeededErrors(seed uint64, p float64) *Errors {
	thr := probThreshold(p)
	return &Errors{
		counts:  make(map[uint64]uint64),
		trigger: func(s, k uint64) bool { return (mix(seed, s, k) >> 1) < thr },
	}
}

// ErrorAt returns an error injector that fails exactly the nth (1-based)
// operation of one chosen set, once — the deterministic unit-test trigger.
func ErrorAt(set, n uint64) *Errors {
	return &Errors{
		counts:  make(map[uint64]uint64),
		trigger: func(s, k uint64) bool { return s == set && k == n },
	}
}

// Err counts one operation of set and returns the failure to inject (nil
// for untouched operations). Safe for concurrent use.
func (e *Errors) Err(set uint64) error {
	e.mu.Lock()
	e.counts[set]++
	n := e.counts[set]
	fire := e.trigger(set, n)
	if fire {
		e.fired++
	}
	e.mu.Unlock()
	if fire {
		return Injected{Set: set, N: n}
	}
	return nil
}

// Fired reports how many errors the injector has returned.
func (e *Errors) Fired() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fired
}

// Flap models one contiguous backend outage: operations [From, To) of the
// flapped backend's own sequence fail, everything before and after
// succeeds. Counting the backend's operations — not wall time — keeps the
// flap deterministic under any scheduling: the breaker sees exactly
// To-From consecutive-failure opportunities, opens partway through, and
// its half-open probe lands after the window closed, which is the
// open→probe→recover cycle the serving stress asserts.
type Flap struct {
	n    atomic.Uint64
	from uint64 // first failing operation, 1-based
	to   uint64 // first succeeding operation after the window
}

// FlapBetween returns a flap failing operations [from, to) (1-based) of
// whatever consumes it.
func FlapBetween(from, to uint64) *Flap {
	if to < from {
		to = from
	}
	return &Flap{from: from, to: to}
}

// Down counts one operation and reports whether it falls inside the outage
// window. Safe for concurrent use.
func (f *Flap) Down() bool {
	n := f.n.Add(1)
	return n >= f.from && n < f.to
}

// Ops reports how many operations the flap has observed.
func (f *Flap) Ops() uint64 { return f.n.Load() }

// probThreshold converts probability p into the 63-bit comparison
// threshold the seeded triggers share. uint64(p * 2^64) overflows for p
// near 1, so triggers compare the top 63 bits of the mix against p scaled
// by 2^63.
func probThreshold(p float64) uint64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return uint64(p * float64(1<<63))
}

// mix is splitmix64-style avalanching over the (seed, set, position)
// coordinate.
func mix(seed, set, n uint64) uint64 {
	x := seed ^ set*0x9e3779b97f4a7c15 ^ n*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
