// Package chaos is the fault-injection harness behind the containment
// tests. An Injector produces a hook the core runtime invokes on the
// executing delegate immediately before every delegated method runs
// (Config.FaultInjector); when the injector's trigger condition holds, the
// hook panics with a Fault value, exercising the recover/poison/report
// machinery exactly where a user operation would have faulted.
//
// Two triggers are provided. PanicAt fires at the Nth operation of one
// chosen set and is fully deterministic: because the serialization-set
// invariant runs a set's operations one at a time in delegation order, the
// per-set counter the injector keeps observes the same sequence on every
// run regardless of scheduling, stealing, or engine mode — which is what
// lets the chaos tests demand byte-identical poisoning points across runs.
// Seeded fires pseudo-randomly from a seed and a per-(set, position) mix,
// for survival stress where the interesting property is "the process never
// dies or wedges", not "the same op faults every time". Note Seeded is
// deterministic per (set, position) too — the mix has no global state — so
// repeated runs of the same workload inject the same faults even though
// the faults look scattered.
//
// The injector fires before the user method is invoked, so a faulted
// operation contributes none of its side effects: the surviving prefix of
// a poisoned set's log is exactly operations 1..N-1, with nothing partial
// from operation N.
package chaos

import (
	"fmt"
	"sync"
)

// Fault is the value injected panics carry. It is a comparable error, so
// tests can assert errors.Is(err, chaos.Fault{Set: s, N: n}) against the
// runtime's reported fault chain.
type Fault struct {
	// Set is the serialization set whose operation was made to panic.
	Set uint64
	// N is the 1-based position of the faulted operation within its set's
	// delegation order.
	N uint64
}

func (f Fault) Error() string {
	return fmt.Sprintf("chaos: injected panic at op %d of set %d", f.N, f.Set)
}

// Injector counts operations per set and panics when its trigger decides
// an operation should fault. Safe for concurrent use by every delegate.
type Injector struct {
	mu     sync.Mutex
	counts map[uint64]uint64
	fired  uint64
	// trigger reports whether the nth (1-based) operation of set should
	// fault. Called under mu.
	trigger func(set, n uint64) bool
}

// PanicAt returns an injector that panics at the nth (1-based) operation
// delegated to set, once. Every other operation passes through untouched.
func PanicAt(set, n uint64) *Injector {
	return &Injector{
		counts: make(map[uint64]uint64),
		trigger: func(s, k uint64) bool {
			return s == set && k == n
		},
	}
}

// Seeded returns an injector that panics on roughly fraction p of
// operations, chosen by mixing seed with the operation's (set, position)
// coordinate. Deterministic for a fixed seed and workload; different seeds
// scatter the faults differently.
func Seeded(seed uint64, p float64) *Injector {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// Threshold in 63-bit space: uint64(p * 2^64) overflows for p near 1,
	// so compare the top 63 bits of the mix against p scaled by 2^63.
	thr := uint64(p * float64(1<<63))
	return &Injector{
		counts: make(map[uint64]uint64),
		trigger: func(s, k uint64) bool {
			return (mix(seed, s, k) >> 1) < thr
		},
	}
}

// Hook returns the function to install as Config.FaultInjector. The hook
// panics with a Fault value when the trigger fires.
func (in *Injector) Hook() func(ctx int, set uint64) {
	return func(ctx int, set uint64) {
		in.mu.Lock()
		in.counts[set]++
		n := in.counts[set]
		fire := in.trigger(set, n)
		if fire {
			in.fired++
		}
		in.mu.Unlock()
		if fire {
			panic(Fault{Set: set, N: n})
		}
	}
}

// Fired reports how many panics the injector has raised.
func (in *Injector) Fired() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Reset clears the per-set counters (the fired total is kept), so one
// injector can be reused across isolation epochs with per-epoch positions.
func (in *Injector) Reset() {
	in.mu.Lock()
	clear(in.counts)
	in.mu.Unlock()
}

// mix is splitmix64-style avalanching over the (seed, set, position)
// coordinate.
func mix(seed, set, n uint64) uint64 {
	x := seed ^ set*0x9e3779b97f4a7c15 ^ n*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
