package chaos

import (
	"testing"

	"repro/internal/durable"
)

func TestErrorsAfter(t *testing.T) {
	e := ErrorsAfter(3)
	for i := 1; i <= 3; i++ {
		if err := e.Err(0); err != nil {
			t.Fatalf("op %d: unexpected fault %v", i, err)
		}
	}
	for i := 4; i <= 6; i++ {
		if err := e.Err(0); err == nil {
			t.Fatalf("op %d: want permanent fault", i)
		}
	}
}

func TestFaultyFSCleanRefusal(t *testing.T) {
	mem := durable.NewMemFS()
	ffs := WrapFS(mem, ErrorsAfter(0)) // every write fails
	st := durable.NewStore(ffs)

	if _, err := st.CommitSnapshot(1, [][]byte{[]byte("x")}); err == nil {
		t.Fatal("want snapshot commit to fail under write faults")
	}
	if ffs.Faults() == 0 {
		t.Fatal("no faults counted")
	}
	// A clean refusal leaves nothing behind: no committed snapshot, and the
	// temp file was removed on the error path.
	if st.HasSnapshot(1) {
		t.Fatal("failed commit left a committed snapshot")
	}
	names, _ := mem.List()
	if len(names) != 0 {
		t.Fatalf("failed commit left files behind: %v", names)
	}
}

func TestFaultyFSPreservesPreviousGeneration(t *testing.T) {
	mem := durable.NewMemFS()
	// A snapshot commit is one buffered Write: op 1 is generation 1's,
	// then storage goes bad.
	ffs := WrapFS(mem, ErrorsAfter(1))
	st := durable.NewStore(ffs)

	if _, err := st.CommitSnapshot(1, [][]byte{[]byte("good")}); err != nil {
		t.Fatalf("healthy commit: %v", err)
	}
	if _, err := st.CommitSnapshot(2, [][]byte{[]byte("bad")}); err == nil {
		t.Fatal("want commit 2 to fail")
	}
	// The degradation contract: a failed commit never regresses the store.
	rec, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Fresh || rec.SnapshotGen != 1 || string(rec.SnapshotRecords[0]) != "good" {
		t.Fatalf("previous generation lost: %+v", rec)
	}
}

func TestFaultyFSShortWriteTearsJournal(t *testing.T) {
	mem := durable.NewMemFS()
	ffs := WrapFS(mem, ErrorsAfter(2))
	ffs.Short = true
	st := durable.NewStore(ffs)

	j, err := st.OpenJournal(1, durable.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	j.Append([]byte("record-one"))
	j.Append([]byte("record-two"))
	// Third append's write is torn: half the frame reaches the file.
	if err := j.Append([]byte("record-three")); err == nil {
		t.Fatal("want torn append to fail")
	}
	// The journal refuses further appends on a torn file — frames after
	// the tear would be unreadable anyway.
	if err := j.Append([]byte("record-four")); err == nil {
		t.Fatal("want appends refused after a tear")
	}

	// Recovery keeps the valid prefix and truncates the torn tail.
	rec, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.JournalRecords) != 2 {
		t.Fatalf("want 2-record prefix, got %d", len(rec.JournalRecords))
	}
	if rec.TruncatedRecords != 1 || rec.TruncatedBytes == 0 {
		t.Fatalf("tear not accounted: %+v", rec)
	}
}

func TestFaultyFSSeededDeterminism(t *testing.T) {
	run := func() (faults uint64, journal int) {
		mem := durable.NewMemFS()
		ffs := WrapFS(mem, SeededErrors(42, 0.3))
		st := durable.NewStore(ffs)
		j, _ := st.OpenJournal(1, durable.FsyncAlways)
		for i := 0; i < 50; i++ {
			j.Append([]byte("payload"))
		}
		j.Close()
		rec, _ := st.Recover()
		return ffs.Faults(), len(rec.JournalRecords)
	}
	f1, n1 := run()
	f2, n2 := run()
	if f1 != f2 || n1 != n2 {
		t.Fatalf("seeded profile not deterministic: (%d,%d) vs (%d,%d)", f1, n1, f2, n2)
	}
	if f1 == 0 {
		t.Fatal("seeded profile injected nothing at p=0.3 over 50 writes")
	}
}
