package chaos

import (
	"errors"
	"testing"
	"time"
)

func TestPanicAtFiresExactlyOnce(t *testing.T) {
	in := PanicAt(7, 3)
	hook := in.Hook()
	var got []uint64
	for k := 1; k <= 5; k++ {
		func() {
			defer func() {
				if v := recover(); v != nil {
					f, ok := v.(Fault)
					if !ok {
						t.Fatalf("recovered %T, want Fault", v)
					}
					got = append(got, f.N)
				}
			}()
			hook(1, 7)
		}()
		hook(1, 9) // other sets never fire
	}
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("fired at positions %v, want [3]", got)
	}
	if in.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", in.Fired())
	}
}

func TestFaultIsComparableError(t *testing.T) {
	var err error = Fault{Set: 5, N: 2}
	if !errors.Is(err, Fault{Set: 5, N: 2}) {
		t.Fatal("errors.Is failed on identical Fault")
	}
	if errors.Is(err, Fault{Set: 5, N: 3}) {
		t.Fatal("errors.Is matched a different Fault")
	}
	want := "chaos: injected panic at op 2 of set 5"
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}

func TestSeededDeterministicAndBounded(t *testing.T) {
	run := func() []uint64 {
		in := Seeded(42, 0.25)
		hook := in.Hook()
		var fired []uint64
		for n := uint64(1); n <= 400; n++ {
			func() {
				defer func() {
					if recover() != nil {
						fired = append(fired, n)
					}
				}()
				hook(1, n%8)
			}()
		}
		return fired
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs fired %d vs %d times", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// p=0.25 over 400 ops: expect ~100; anything in (20, 250) rules out a
	// broken threshold without being flaky.
	if len(a) < 20 || len(a) > 250 {
		t.Fatalf("seeded p=0.25 fired %d/400 times", len(a))
	}
	// Degenerate probabilities must not overflow or misbehave.
	if f := Seeded(1, 0); f == nil {
		t.Fatal("Seeded(1, 0) nil")
	}
	in := Seeded(9, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Seeded(_, 1) did not fire")
			}
		}()
		in.Hook()(1, 3)
	}()
}

func TestSpikeEveryPeriodAndDeterminism(t *testing.T) {
	l := SpikeEvery(3, 200*time.Millisecond)
	var delays []time.Duration
	for i := 0; i < 9; i++ {
		delays = append(delays, l.Delay(4))
	}
	for i, d := range delays {
		want := time.Duration(0)
		if (i+1)%3 == 0 {
			want = 200 * time.Millisecond
		}
		if d != want {
			t.Fatalf("op %d: delay %v, want %v", i+1, d, want)
		}
	}
	if l.Fired() != 3 {
		t.Fatalf("Fired() = %d, want 3", l.Fired())
	}
	// Per-set counting: a second set has its own period phase.
	if d := l.Delay(5); d != 0 {
		t.Fatalf("first op of a fresh set spiked: %v", d)
	}
	// k<1 clamps to every op.
	if d := SpikeEvery(0, time.Millisecond).Delay(1); d != time.Millisecond {
		t.Fatalf("SpikeEvery(0) op 1: %v, want 1ms", d)
	}
}

func TestSeededLatencyDeterministic(t *testing.T) {
	run := func() []int {
		l := SeededLatency(7, 0.3, time.Millisecond)
		var hits []int
		for i := 0; i < 200; i++ {
			if l.Delay(uint64(i%4)) > 0 {
				hits = append(hits, i)
			}
		}
		return hits
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs spiked %d vs %d times", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if len(a) < 20 || len(a) > 120 {
		t.Fatalf("p=0.3 over 200 ops spiked %d times", len(a))
	}
}

func TestErrorsInjector(t *testing.T) {
	e := ErrorAt(9, 2)
	if err := e.Err(9); err != nil {
		t.Fatalf("op 1 errored: %v", err)
	}
	err := e.Err(9)
	if err == nil {
		t.Fatal("op 2 did not error")
	}
	if !errors.Is(err, Injected{Set: 9, N: 2}) {
		t.Fatalf("error %v is not Injected{9,2}", err)
	}
	want := "chaos: injected error at op 2 of set 9"
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
	if err := e.Err(9); err != nil {
		t.Fatalf("op 3 errored: %v", err)
	}
	if e.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", e.Fired())
	}

	// Seeded errors: deterministic across runs, transient across positions
	// (the retry contract — a fresh position rolls a fresh coin).
	run := func() uint64 {
		se := SeededErrors(11, 0.05)
		for i := 0; i < 1000; i++ {
			se.Err(uint64(i % 8))
		}
		return se.Fired()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("seeded error runs fired %d vs %d", a, b)
	}
	if a == 0 || a > 200 {
		t.Fatalf("p=0.05 over 1000 ops fired %d times", a)
	}
}

func TestFlapWindow(t *testing.T) {
	f := FlapBetween(3, 6)
	var down []bool
	for i := 0; i < 8; i++ {
		down = append(down, f.Down())
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if down[i] != want[i] {
			t.Fatalf("op %d: down=%v, want %v (window [3,6))", i+1, down[i], want[i])
		}
	}
	if f.Ops() != 8 {
		t.Fatalf("Ops() = %d, want 8", f.Ops())
	}
	// Inverted bounds clamp to an empty window.
	g := FlapBetween(5, 2)
	for i := 0; i < 10; i++ {
		if g.Down() {
			t.Fatal("empty-window flap reported down")
		}
	}
}

func TestResetClearsPositions(t *testing.T) {
	in := PanicAt(1, 2)
	hook := in.Hook()
	hook(0, 1) // position 1: no fire
	in.Reset()
	hook(0, 1) // position 1 again after reset: still no fire
	fired := false
	func() {
		defer func() { fired = recover() != nil }()
		hook(0, 1) // position 2 after reset: fires
	}()
	if !fired {
		t.Fatal("reset did not restart per-set position counting")
	}
}
