package chaos

import (
	"errors"
	"testing"
)

func TestPanicAtFiresExactlyOnce(t *testing.T) {
	in := PanicAt(7, 3)
	hook := in.Hook()
	var got []uint64
	for k := 1; k <= 5; k++ {
		func() {
			defer func() {
				if v := recover(); v != nil {
					f, ok := v.(Fault)
					if !ok {
						t.Fatalf("recovered %T, want Fault", v)
					}
					got = append(got, f.N)
				}
			}()
			hook(1, 7)
		}()
		hook(1, 9) // other sets never fire
	}
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("fired at positions %v, want [3]", got)
	}
	if in.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", in.Fired())
	}
}

func TestFaultIsComparableError(t *testing.T) {
	var err error = Fault{Set: 5, N: 2}
	if !errors.Is(err, Fault{Set: 5, N: 2}) {
		t.Fatal("errors.Is failed on identical Fault")
	}
	if errors.Is(err, Fault{Set: 5, N: 3}) {
		t.Fatal("errors.Is matched a different Fault")
	}
	want := "chaos: injected panic at op 2 of set 5"
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}

func TestSeededDeterministicAndBounded(t *testing.T) {
	run := func() []uint64 {
		in := Seeded(42, 0.25)
		hook := in.Hook()
		var fired []uint64
		for n := uint64(1); n <= 400; n++ {
			func() {
				defer func() {
					if recover() != nil {
						fired = append(fired, n)
					}
				}()
				hook(1, n%8)
			}()
		}
		return fired
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs fired %d vs %d times", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// p=0.25 over 400 ops: expect ~100; anything in (20, 250) rules out a
	// broken threshold without being flaky.
	if len(a) < 20 || len(a) > 250 {
		t.Fatalf("seeded p=0.25 fired %d/400 times", len(a))
	}
	// Degenerate probabilities must not overflow or misbehave.
	if f := Seeded(1, 0); f == nil {
		t.Fatal("Seeded(1, 0) nil")
	}
	in := Seeded(9, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Seeded(_, 1) did not fire")
			}
		}()
		in.Hook()(1, 3)
	}()
}

func TestResetClearsPositions(t *testing.T) {
	in := PanicAt(1, 2)
	hook := in.Hook()
	hook(0, 1) // position 1: no fire
	in.Reset()
	hook(0, 1) // position 1 again after reset: still no fire
	fired := false
	func() {
		defer func() { fired = recover() != nil }()
		hook(0, 1) // position 2 after reset: fires
	}()
	if !fired {
		t.Fatal("reset did not restart per-set position counting")
	}
}
