package prometheus

import "sync/atomic"

// Owned is the library's smart pointer (paper §3.1: "a set of smart
// pointer types that can track ownership of pointed-to objects, and detect
// errors when they are accessed by more than one owner in an isolation
// epoch"). Wrapper classes guarantee isolation for state stored inside an
// object, but objects holding pointers to outside state can still
// interfere; routing such pointers through Owned extends the dynamic
// checks to the pointed-to data.
//
// Use records the accessing context; the first access in an isolation
// epoch claims ownership for that epoch, and any later access from a
// different context panics with ErrPartitionViolation. Outside isolation
// epochs access is unrestricted. The claim check is lock-free (a single
// CAS) so it is cheap enough to leave enabled in delegated code.
type Owned[T any] struct {
	rt  *Runtime
	obj T
	// claim packs (epoch << 8 | ctx+1) of the claiming access; 0 = never
	// claimed. Context ids fit in 8 bits (delegate pools are machine-
	// sized); epochs in the remaining 56.
	claim atomic.Uint64
}

// NewOwned wraps obj in an ownership-tracked pointer.
func NewOwned[T any](rt *Runtime, obj T) *Owned[T] {
	return &Owned[T]{rt: rt, obj: obj}
}

// Use returns the pointed-to object, recording (and checking) ownership
// for the current isolation epoch. Pass the *Ctx of the executing
// delegated operation, or Runtime.ProgramCtx() from the program context.
func (o *Owned[T]) Use(c *Ctx) *T {
	rt := o.rt
	// Epoch state only changes in the program context while delegates are
	// quiescent (EndIsolation is a barrier), so this read is stable from
	// any executing operation.
	if !rt.core.InIsolation() {
		return &o.obj
	}
	tag := rt.core.Epoch()<<8 | uint64(c.id) + 1
	for {
		cur := o.claim.Load()
		if cur>>8 != rt.core.Epoch() {
			// Unclaimed this epoch: try to claim.
			if o.claim.CompareAndSwap(cur, tag) {
				return &o.obj
			}
			continue
		}
		if cur != tag {
			raise(ErrPartitionViolation,
				"owned pointer accessed by context %d after being owned by context %d this epoch",
				c.id, int(cur&0xff)-1)
		}
		return &o.obj
	}
}

// Owner returns the context id holding the object this epoch, or -1.
func (o *Owned[T]) Owner() int {
	cur := o.claim.Load()
	if cur == 0 || cur>>8 != o.rt.core.Epoch() || !o.rt.core.InIsolation() {
		return -1
	}
	return int(cur&0xff) - 1
}
