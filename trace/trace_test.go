package trace

import (
	"strings"
	"testing"
	"time"

	prometheus "repro"
)

// runTraced produces a real trace with known structure.
func runTraced(t *testing.T) []prometheus.TraceEvent {
	t.Helper()
	rt := prometheus.Init(prometheus.WithDelegates(3), prometheus.WithTrace())
	defer rt.Terminate()
	ws := make([]*prometheus.Writable[int], 12)
	for i := range ws {
		ws[i] = prometheus.NewWritable(rt, i)
	}
	rt.BeginIsolation()
	for round := 0; round < 5; round++ {
		prometheus.DoAll(ws, func(c *prometheus.Ctx, p *int) {
			time.Sleep(200 * time.Microsecond)
		})
	}
	rt.EndIsolation()
	return rt.TraceEvents()
}

func TestAnalyzeCountsOpsAndEpochs(t *testing.T) {
	events := runTraced(t)
	r := Analyze(events)
	if r.Ops != 60 {
		t.Fatalf("ops = %d, want 60", r.Ops)
	}
	if r.Epochs != 1 {
		t.Fatalf("epochs = %d, want 1", r.Epochs)
	}
	if len(r.SetOps) != 12 {
		t.Fatalf("sets = %d, want 12", len(r.SetOps))
	}
	for set, n := range r.SetOps {
		if n != 5 {
			t.Fatalf("set %d ran %d ops, want 5", set, n)
		}
	}
	if r.Skew() != 1.0 {
		t.Fatalf("skew = %f, want 1.0 for even sets", r.Skew())
	}
	if r.Span <= 0 {
		t.Fatal("span not positive")
	}
	var busy time.Duration
	for _, c := range r.Contexts {
		if c.Ctx == 0 {
			continue // program context only executes with ProgramShare
		}
		busy += c.Busy
		if c.MeanOp < 150*time.Microsecond {
			t.Fatalf("ctx %d mean op %v, want >= ~200µs", c.Ctx, c.MeanOp)
		}
	}
	if busy < 10*time.Millisecond {
		t.Fatalf("total busy %v too small", busy)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	r := Analyze(nil)
	if r.Ops != 0 || r.Span != 0 || r.Skew() != 0 {
		t.Fatal("empty trace should analyze to zeroes")
	}
}

func TestWriteReportAndTimeline(t *testing.T) {
	events := runTraced(t)
	var sb strings.Builder
	Analyze(events).WriteReport(&sb)
	out := sb.String()
	if !strings.Contains(out, "ops=60") || !strings.Contains(out, "util") {
		t.Fatalf("report:\n%s", out)
	}
	sb.Reset()
	Timeline(&sb, events, 60)
	tl := sb.String()
	if !strings.Contains(tl, "ctx1") || !strings.Contains(tl, "#") {
		t.Fatalf("timeline:\n%s", tl)
	}
	sb.Reset()
	Timeline(&sb, nil, 40)
	if !strings.Contains(sb.String(), "no exec events") {
		t.Fatal("empty timeline not handled")
	}
}

func TestTraceDisabledReturnsNil(t *testing.T) {
	rt := prometheus.Init(prometheus.WithDelegates(1))
	defer rt.Terminate()
	if rt.TraceEvents() != nil {
		t.Fatal("trace should be nil when disabled")
	}
}

func TestSkewDetectsImbalance(t *testing.T) {
	rt := prometheus.Init(prometheus.WithDelegates(2), prometheus.WithTrace())
	defer rt.Terminate()
	w := prometheus.NewWritableSer(rt, 0, prometheus.NullSerializer[int]())
	rt.BeginIsolation()
	for i := 0; i < 9; i++ {
		w.DelegateTo(1, func(c *prometheus.Ctx, p *int) {})
	}
	w.DelegateTo(2, func(c *prometheus.Ctx, p *int) {})
	rt.EndIsolation()
	r := Analyze(rt.TraceEvents())
	// Set 1 has 9 ops, set 2 has 1: mean 5, max 9 -> skew 1.8.
	if got := r.Skew(); got < 1.7 || got > 1.9 {
		t.Fatalf("skew = %f, want 1.8", got)
	}
}
