// Package trace analyzes execution traces recorded by a runtime built with
// prometheus.WithTrace: per-context utilization, per-set operation counts,
// and an ASCII timeline. It is the tooling behind the overhead analysis of
// the paper's §5 (where does time go — delegation, execution, or idling).
package trace

import (
	"fmt"
	"io"
	"sort"
	"time"

	prometheus "repro"
)

// ContextReport summarizes one execution context.
type ContextReport struct {
	Ctx       int
	Ops       int           // delegated operations executed
	Busy      time.Duration // total exec time
	Util      float64       // Busy / span
	MeanOp    time.Duration
	Sets      int // distinct serialization sets executed
	LongestOp time.Duration
}

// Report is the full trace analysis.
type Report struct {
	Span     time.Duration // first event start to last event end
	Epochs   int
	Ops      int
	Contexts []ContextReport
	// SetOps counts operations per serialization set, for skew analysis.
	SetOps map[uint64]int
}

// Analyze builds a Report from a merged event list.
func Analyze(events []prometheus.TraceEvent) *Report {
	r := &Report{SetOps: map[uint64]int{}}
	if len(events) == 0 {
		return r
	}
	var lo, hi time.Duration
	lo = events[0].Start
	perCtx := map[int]*ContextReport{}
	perCtxSets := map[int]map[uint64]bool{}
	for _, e := range events {
		if e.Start < lo {
			lo = e.Start
		}
		if e.End > hi {
			hi = e.End
		}
		switch e.Kind {
		case prometheus.TraceEpoch:
			r.Epochs++
		case prometheus.TraceExec:
			r.Ops++
			c := perCtx[e.Ctx]
			if c == nil {
				c = &ContextReport{Ctx: e.Ctx}
				perCtx[e.Ctx] = c
				perCtxSets[e.Ctx] = map[uint64]bool{}
			}
			d := e.End - e.Start
			c.Ops++
			c.Busy += d
			if d > c.LongestOp {
				c.LongestOp = d
			}
			perCtxSets[e.Ctx][e.Set] = true
			r.SetOps[e.Set]++
		}
	}
	r.Span = hi - lo
	for ctx, c := range perCtx {
		c.Sets = len(perCtxSets[ctx])
		if c.Ops > 0 {
			c.MeanOp = c.Busy / time.Duration(c.Ops)
		}
		if r.Span > 0 {
			c.Util = float64(c.Busy) / float64(r.Span)
		}
		r.Contexts = append(r.Contexts, *c)
	}
	sort.Slice(r.Contexts, func(i, j int) bool { return r.Contexts[i].Ctx < r.Contexts[j].Ctx })
	return r
}

// Skew returns the ratio of the heaviest set's operation count to the mean
// — 1.0 means perfectly even sets.
func (r *Report) Skew() float64 {
	if len(r.SetOps) == 0 {
		return 0
	}
	max, total := 0, 0
	for _, n := range r.SetOps {
		total += n
		if n > max {
			max = n
		}
	}
	mean := float64(total) / float64(len(r.SetOps))
	return float64(max) / mean
}

// WriteReport renders the analysis as a table.
func (r *Report) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "trace: span=%v epochs=%d ops=%d sets=%d skew=%.2f\n",
		r.Span.Round(time.Microsecond), r.Epochs, r.Ops, len(r.SetOps), r.Skew())
	fmt.Fprintf(w, "%-5s %8s %12s %7s %12s %12s %6s\n",
		"ctx", "ops", "busy", "util", "mean-op", "longest-op", "sets")
	for _, c := range r.Contexts {
		fmt.Fprintf(w, "%-5d %8d %12v %6.1f%% %12v %12v %6d\n",
			c.Ctx, c.Ops, c.Busy.Round(time.Microsecond), 100*c.Util,
			c.MeanOp.Round(time.Nanosecond), c.LongestOp.Round(time.Microsecond), c.Sets)
	}
}

// Timeline renders an ASCII Gantt chart: one row per context, '#' where
// the context was executing delegated work.
func Timeline(w io.Writer, events []prometheus.TraceEvent, width int) {
	if width < 10 {
		width = 80
	}
	var lo, hi time.Duration
	first := true
	maxCtx := 0
	for _, e := range events {
		if e.Kind != prometheus.TraceExec {
			continue
		}
		if first || e.Start < lo {
			lo = e.Start
		}
		if e.End > hi {
			hi = e.End
		}
		first = false
		if e.Ctx > maxCtx {
			maxCtx = e.Ctx
		}
	}
	if first || hi <= lo {
		fmt.Fprintln(w, "(no exec events)")
		return
	}
	rows := make([][]byte, maxCtx+1)
	for i := range rows {
		rows[i] = []byte(repeat('.', width))
	}
	scale := float64(width) / float64(hi-lo)
	for _, e := range events {
		if e.Kind != prometheus.TraceExec {
			continue
		}
		a := int(float64(e.Start-lo) * scale)
		b := int(float64(e.End-lo) * scale)
		if b >= width {
			b = width - 1
		}
		for i := a; i <= b; i++ {
			rows[e.Ctx][i] = '#'
		}
	}
	fmt.Fprintf(w, "timeline %v .. %v (1 col = %v)\n",
		lo.Round(time.Microsecond), hi.Round(time.Microsecond),
		((hi - lo) / time.Duration(width)).Round(time.Nanosecond))
	for ctx, row := range rows {
		fmt.Fprintf(w, "ctx%-2d |%s|\n", ctx, row)
	}
}

func repeat(b byte, n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = b
	}
	return string(s)
}
