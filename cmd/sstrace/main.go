// Command sstrace runs one benchmark with execution tracing enabled and
// prints the delegate-utilization report and an ASCII timeline — the
// profiling view behind the paper's §5 overhead discussion (where time
// goes: executing delegated operations vs. idling on queues).
//
// Usage:
//
//	sstrace -app word_count -size S -delegates 8 [-timeline-width 100]
package main

import (
	"flag"
	"fmt"
	"os"

	prometheus "repro"
	"repro/internal/harness"
	"repro/internal/workload"
	"repro/trace"
)

func main() {
	var (
		appFlag   = flag.String("app", "word_count", "benchmark to trace")
		sizeFlag  = flag.String("size", "S", "input size class: S, M, or L")
		delegates = flag.Int("delegates", 8, "delegate contexts")
		width     = flag.Int("timeline-width", 100, "timeline width in columns")
	)
	flag.Parse()

	size, ok := workload.ParseSize(*sizeFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "sstrace: bad -size %q\n", *sizeFlag)
		os.Exit(2)
	}
	app, ok := harness.AppByName(*appFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "sstrace: unknown app %q (have %v)\n", *appFlag, harness.AppNames())
		os.Exit(2)
	}
	inst := app.Load(size)
	if inst.SSTraced == nil {
		fmt.Fprintf(os.Stderr, "sstrace: %s has no traced runner\n", *appFlag)
		os.Exit(1)
	}
	fmt.Printf("tracing %s (size %s, %d delegates): %s\n", app.Name, size, *delegates, inst.Desc)
	events, st := inst.SSTraced(*delegates)
	fmt.Printf("phases: aggregation=%v isolation=%v reduction=%v\n\n",
		st.Aggregation, st.Isolation, st.Reduction)
	report := trace.Analyze(events)
	report.WriteReport(os.Stdout)
	fmt.Println()
	trace.Timeline(os.Stdout, events, *width)
	_ = prometheus.TraceExec // keep the dependency explicit for godoc cross-reference
}
