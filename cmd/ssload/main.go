// Command ssload is the adversarial load generator for ssserve: a
// deterministic skewed client fleet (internal/loadgen) that hammers a
// live server's /bump counter API and then asserts on the answers —
// per-key causal order across the whole fleet, zero hung requests,
// a healthy-latency p99 bound, and an error budget. With
// -expect-breaker-cycle it additionally scrapes /metrics and requires
// that at least one backend circuit breaker opened AND returned to
// closed during the run — the assertion the CI smoke job uses to prove
// the health-gating path actually exercised, not just compiled.
//
// Exit status: 0 when every enabled assertion held, 1 otherwise (with
// one line per violation on stderr). The run report always prints to
// stdout, pass or fail.
//
//	ssload -url http://127.0.0.1:8080 -n 5000 -workers 16 \
//	       -hot-fraction 0.9 -max-p99 500ms -max-error-rate 0.02 \
//	       -expect-breaker-cycle
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/loadgen"
)

func main() {
	var (
		url          = flag.String("url", "http://127.0.0.1:8080", "target ssserve base URL")
		n            = flag.Int("n", 1000, "total requests")
		workers      = flag.Int("workers", 8, "concurrent client workers")
		hotKeys      = flag.Int("hot-keys", 2, "hot key count")
		coldKeys     = flag.Int("cold-keys", 64, "cold key count")
		hotFraction  = flag.Float64("hot-fraction", 0.9, "fraction of requests on hot keys")
		seed         = flag.Uint64("seed", 1, "deterministic request-stream seed")
		timeout      = flag.Duration("timeout", 5*time.Second, "per-request client budget (hang detector)")
		maxP99       = flag.Duration("max-p99", 0, "healthy-response p99 bound (0 = don't assert)")
		maxErrRate   = flag.Float64("max-error-rate", 0, "max non-shed 5xx fraction (0 = don't assert)")
		breakerCycle = flag.Bool("expect-breaker-cycle", false, "require a breaker to have opened and re-closed (scrapes /metrics)")
		scrapeWait   = flag.Duration("breaker-wait", 10*time.Second, "how long to wait for the breaker to recover")
	)
	flag.Parse()

	p := loadgen.Profile{
		BaseURL:      *url,
		Workers:      *workers,
		Requests:     *n,
		HotKeys:      *hotKeys,
		ColdKeys:     *coldKeys,
		HotFraction:  *hotFraction,
		Seed:         *seed,
		Timeout:      *timeout,
		MaxP99:       *maxP99,
		MaxErrorRate: *maxErrRate,
	}
	res, err := loadgen.Run(p)
	if err != nil {
		log.Fatalf("ssload: %v", err)
	}
	fmt.Print(res)

	violations := res.Check(p)
	if *breakerCycle {
		if msg := waitBreakerCycle(*url, *scrapeWait); msg != "" {
			violations = append(violations, msg)
		}
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "ssload: VIOLATION: %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("ssload: all assertions held")
}

// waitBreakerCycle polls /metrics until some breaker has opened at
// least once and every backend is back in the closed state, issuing a
// trickle of probe traffic so half-open transitions can happen. Returns
// "" on success, a violation message on timeout.
func waitBreakerCycle(base string, wait time.Duration) string {
	deadline := time.Now().Add(wait)
	probe := loadgen.Profile{BaseURL: base, Workers: 1, Requests: 4, HotKeys: 1, ColdKeys: 1}
	for {
		m, err := loadgen.Scrape(base + "/metrics")
		if err != nil {
			return fmt.Sprintf("metrics scrape failed: %v", err)
		}
		opens := m.Sum("ss_breaker_opens_total")
		if opens >= 1 && m.Sum("ss_backend_state") == 0 {
			return ""
		}
		if time.Now().After(deadline) {
			return fmt.Sprintf("breaker never cycled within %v: opens=%v, open-state sum=%v",
				wait, opens, m.Sum("ss_backend_state"))
		}
		if _, err := loadgen.Run(probe); err != nil {
			return fmt.Sprintf("probe traffic failed: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
