// Command ssload is the adversarial load generator for ssserve: a
// deterministic skewed client fleet (internal/loadgen) that hammers a
// live server's /bump counter API and then asserts on the answers —
// per-key causal order across the whole fleet, zero hung requests,
// a healthy-latency p99 bound, and an error budget. With
// -expect-breaker-cycle it additionally scrapes /metrics and requires
// that at least one backend circuit breaker opened AND returned to
// closed during the run — the assertion the CI smoke job uses to prove
// the health-gating path actually exercised, not just compiled.
//
// Exit status: 0 when every enabled assertion held, 1 otherwise (with
// one line per violation on stderr). The run report always prints to
// stdout, pass or fail.
//
//	ssload -url http://127.0.0.1:8080 -n 5000 -workers 16 \
//	       -hot-fraction 0.9 -max-p99 500ms -max-error-rate 0.02 \
//	       -expect-breaker-cycle
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/loadgen"
)

func main() {
	var (
		url          = flag.String("url", "http://127.0.0.1:8080", "target ssserve base URL")
		n            = flag.Int("n", 1000, "total requests")
		workers      = flag.Int("workers", 8, "concurrent client workers")
		hotKeys      = flag.Int("hot-keys", 2, "hot key count")
		coldKeys     = flag.Int("cold-keys", 64, "cold key count")
		hotFraction  = flag.Float64("hot-fraction", 0.9, "fraction of requests on hot keys")
		seed         = flag.Uint64("seed", 1, "deterministic request-stream seed")
		timeout      = flag.Duration("timeout", 5*time.Second, "per-request client budget (hang detector)")
		maxP99       = flag.Duration("max-p99", 0, "healthy-response p99 bound (0 = don't assert)")
		maxErrRate   = flag.Float64("max-error-rate", 0, "max non-shed 5xx fraction (0 = don't assert)")
		breakerCycle = flag.Bool("expect-breaker-cycle", false, "require a breaker to have opened and re-closed (scrapes /metrics)")
		scrapeWait   = flag.Duration("breaker-wait", 10*time.Second, "how long to wait for the breaker to recover")

		// Crash-recovery drill (-recovery spawns its own ssserve; -url is ignored).
		recovery  = flag.Bool("recovery", false, "run the crash-restart recovery drill instead of a plain load run")
		serverBin = flag.String("server-bin", "", "recovery: path to the ssserve binary")
		stateDir  = flag.String("state-dir", "", "recovery: state directory shared across the restart")
		fsync     = flag.String("fsync", "rotation", "recovery: journal fsync policy under test (off, rotation, always)")
		epoch     = flag.Duration("epoch", 25*time.Millisecond, "recovery: server epoch interval (sets the rotation loss margin)")
		killAfter = flag.Duration("kill-after", time.Second, "recovery: traffic duration before SIGKILL")
	)
	flag.Parse()

	if *recovery {
		runRecovery(recoveryOpts{
			serverBin: *serverBin, stateDir: *stateDir, fsync: *fsync,
			epoch: *epoch, killAfter: *killAfter,
			workers: *workers, requests: *n,
			hotKeys: *hotKeys, coldKeys: *coldKeys, hotFraction: *hotFraction,
			seed: *seed, maxP99: *maxP99, maxErrRate: *maxErrRate,
		})
		return
	}

	p := loadgen.Profile{
		BaseURL:      *url,
		Workers:      *workers,
		Requests:     *n,
		HotKeys:      *hotKeys,
		ColdKeys:     *coldKeys,
		HotFraction:  *hotFraction,
		Seed:         *seed,
		Timeout:      *timeout,
		MaxP99:       *maxP99,
		MaxErrorRate: *maxErrRate,
	}
	res, err := loadgen.Run(p)
	if err != nil {
		log.Fatalf("ssload: %v", err)
	}
	fmt.Print(res)

	violations := res.Check(p)
	if *breakerCycle {
		if msg := waitBreakerCycle(*url, *scrapeWait); msg != "" {
			violations = append(violations, msg)
		}
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "ssload: VIOLATION: %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("ssload: all assertions held")
}

type recoveryOpts struct {
	serverBin, stateDir, fsync string
	epoch, killAfter           time.Duration
	workers, requests          int
	hotKeys, coldKeys          int
	hotFraction                float64
	seed                       uint64
	maxP99                     time.Duration
	maxErrRate                 float64
}

// runRecovery executes the crash-restart drill: spawn ssserve, load it,
// SIGKILL it mid-traffic, restart on the same state dir, assert the fsync
// policy's loss bound across the boundary, then a clean phase-2 run and a
// SIGTERM drain. Exits 0 only when every assertion held.
func runRecovery(o recoveryOpts) {
	phase2 := loadgen.Profile{
		Workers: o.workers, Requests: o.requests,
		HotKeys: o.hotKeys, ColdKeys: o.coldKeys, HotFraction: o.hotFraction,
		Seed: o.seed + 1, MaxP99: o.maxP99, MaxErrorRate: o.maxErrRate,
	}
	phase1 := phase2
	phase1.Seed = o.seed
	phase1.MaxP99, phase1.MaxErrorRate = 0, 0 // phase 1 ends in a SIGKILL; no bounds
	phase1.Requests = 0                       // unbounded — the kill ends it

	res, err := loadgen.RunRecovery(loadgen.RecoveryProfile{
		ServerBin:     o.serverBin,
		StateDir:      o.stateDir,
		Fsync:         o.fsync,
		EpochInterval: o.epoch,
		KillAfter:     o.killAfter,
		Phase1:        phase1,
		Phase2:        phase2,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatalf("ssload: recovery drill: %v", err)
	}
	fmt.Printf("phase 1 (killed):\n%s", res.Phase1)
	fmt.Printf("recovered_sessions %d  journal_truncated_records %d  probed_keys %d\n",
		res.RecoveredSessions, res.TruncatedRecords, res.ProbedKeys)
	fmt.Printf("phase 2 (recovered):\n%s", res.Phase2)
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "ssload: VIOLATION: %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Printf("ssload: recovery drill passed (fsync=%s)\n", o.fsync)
}

// waitBreakerCycle polls /metrics until some breaker has opened at
// least once and every backend is back in the closed state, issuing a
// trickle of probe traffic so half-open transitions can happen. Returns
// "" on success, a violation message on timeout.
func waitBreakerCycle(base string, wait time.Duration) string {
	deadline := time.Now().Add(wait)
	probe := loadgen.Profile{BaseURL: base, Workers: 1, Requests: 4, HotKeys: 1, ColdKeys: 1}
	for {
		m, err := loadgen.Scrape(base + "/metrics")
		if err != nil {
			return fmt.Sprintf("metrics scrape failed: %v", err)
		}
		opens := m.Sum("ss_breaker_opens_total")
		if opens >= 1 && m.Sum("ss_backend_state") == 0 {
			return ""
		}
		if time.Now().After(deadline) {
			return fmt.Sprintf("breaker never cycled within %v: opens=%v, open-state sum=%v",
				wait, opens, m.Sum("ss_backend_state"))
		}
		if _, err := loadgen.Run(probe); err != nil {
			return fmt.Sprintf("probe traffic failed: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
