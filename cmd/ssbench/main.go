// Command ssbench regenerates every table and figure of the paper's
// evaluation (Table 2/3, Figures 4, 5a, 5b, 6) plus the ablation suite.
//
// Usage:
//
//	ssbench -experiment fig4 [-size M] [-reps 3] [-apps word_count,dedup]
//	ssbench -experiment all -size S     # quick smoke of every experiment
//	ssbench -experiment fig6 -max-delegates 15
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
	"repro/internal/workload"
)

func main() {
	var (
		experiment   = flag.String("experiment", "fig4", "one of: table2, table3, fig4, fig5a, fig5b, fig6, ablation, all")
		sizeFlag     = flag.String("size", "M", "input size class: S, M, or L")
		reps         = flag.Int("reps", 1, "timing repetitions (best-of)")
		appsFlag     = flag.String("apps", "", "comma-separated benchmark filter (default: all)")
		maxDelegates = flag.Int("max-delegates", 15, "fig6: largest delegate count")
		stealThresh  = flag.Int("steal-threshold", 0, "ablation: explicit StealThreshold for the A5/A6 stealing runs (0 = adaptive default)")
	)
	flag.Parse()

	size, ok := workload.ParseSize(*sizeFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "ssbench: bad -size %q (want S, M, or L)\n", *sizeFlag)
		os.Exit(2)
	}
	var apps []string
	if *appsFlag != "" {
		apps = strings.Split(*appsFlag, ",")
	}
	opts := harness.Options{Size: size, Reps: *reps, Apps: apps, StealThreshold: *stealThresh}

	run := func(name string) error {
		switch name {
		case "table2":
			return harness.Table2(os.Stdout, opts)
		case "table3":
			harness.Table3(os.Stdout)
			return nil
		case "fig4":
			return harness.Fig4(os.Stdout, opts)
		case "fig5a":
			return harness.Fig5a(os.Stdout, opts)
		case "fig5b":
			return harness.Fig5b(os.Stdout, opts)
		case "fig6":
			return harness.Fig6(os.Stdout, opts, *maxDelegates)
		case "ablation":
			return harness.Ablation(os.Stdout, opts)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	var names []string
	if *experiment == "all" {
		names = []string{"table2", "table3", "fig4", "fig5a", "fig5b", "fig6", "ablation"}
	} else {
		names = []string{*experiment}
	}
	for i, name := range names {
		if i > 0 {
			fmt.Println()
		}
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "ssbench: %v\n", err)
			os.Exit(1)
		}
	}
}
