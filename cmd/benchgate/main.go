// Command benchgate is the CI regression gate for the delegation hot
// paths: it reads `go test -bench` output on stdin, extracts the
// BenchmarkDelegateOverhead, BenchmarkRecursiveOverhead, and
// BenchmarkRecursiveSkewed variants, and compares them against the
// numbers recorded in one or more PR benchmark baselines (-baseline may
// be repeated: BENCH_PR1.json carries the flat path's
// delegate_overhead_variants_after table, BENCH_PR3.json the recursive
// engine's recursive_overhead_variants_after table, BENCH_PR4.json the
// recursive-stealing skewed workload's recursive_skewed_variants_after
// table). It exits nonzero when a variant regresses by more than
// -max-regress-pct, or when a variant's allocs/op exceed the baseline's.
//
// Raw ns/op is not portable across machines, so -normalize names a canary
// variant (sequential-inline: one trampoline call, no queues, no
// goroutines — pure single-thread machine speed): each variant is compared
// as a ratio to its own table's canary, current vs baseline, which cancels
// the host's clock out of the gate while still catching hot-path
// regressions. Each benchmark table normalizes against the canary variant
// of the same benchmark, so the flat and recursive gates stay independent.
// Without -normalize the comparison is absolute, for runs on the machine
// that produced the baselines.
//
// Repeated benchmark lines for one variant (go test -count=N) are reduced
// to their minimum, the standard noise suppression for throughput numbers.
//
//	go test -run=NONE -bench 'BenchmarkDelegateOverhead|BenchmarkRecursiveOverhead' -benchmem -count=3 . |
//	  go run ./cmd/benchgate -baseline BENCH_PR1.json -baseline BENCH_PR3.json -normalize sequential-inline
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baselineFile mirrors the slice of the BENCH_PR*.json schema the gate
// reads; unknown fields are ignored. A file may carry any subset of the
// variant tables.
type baselineFile struct {
	PR               int                        `json:"pr"`
	DelegateVariants map[string]baselineVariant `json:"delegate_overhead_variants_after"`
	// RecursiveVariants gates the recursive hot path (BENCH_PR3.json).
	RecursiveVariants map[string]baselineVariant `json:"recursive_overhead_variants_after"`
	// SkewedVariants gates the recursive-stealing skewed workload
	// (BENCH_PR4.json). Its numbers are sleep-bound, so gate it in a
	// separate invocation normalized by its own "nosteal" variant: the
	// steal/nosteal ratio — the stealing win itself — is what's pinned,
	// and host differences in effective sleep duration cancel out. The
	// CPU-speed canary would be the wrong normalizer for a sleep-bound
	// table.
	SkewedVariants map[string]baselineVariant `json:"recursive_skewed_variants_after"`
}

type baselineVariant struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"B_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// gateTable is one benchmark's worth of baseline expectations: the bench
// name prefix its variants appear under, and the file/PR they came from.
type gateTable struct {
	bench    string // e.g. "BenchmarkDelegateOverhead"
	source   string
	pr       int
	variants map[string]baselineVariant
}

type measured struct {
	nsOp     float64
	allocsOp float64
	haveMem  bool
}

// benchLine matches one `go test -bench` result row, e.g.
//
//	BenchmarkDelegateOverhead/writable-8  20000000  91.26 ns/op  0 B/op  0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// parseBench resolves a bench row's name against one table's variants.
func parseBench(name, bench string, known map[string]baselineVariant) (variant string, ok bool) {
	prefix := bench + "/"
	if !strings.HasPrefix(name, prefix) {
		return "", false
	}
	v := strings.TrimPrefix(name, prefix)
	// On GOMAXPROCS>1 hosts go test appends a -N tag; prefer an exact
	// baseline match (variant names may themselves end in a number, e.g.
	// writable-spread-4) and only then try stripping the tag.
	if _, exact := known[v]; exact {
		return v, true
	}
	if i := strings.LastIndex(v, "-"); i > 0 {
		if _, err := strconv.Atoi(v[i+1:]); err == nil {
			v = v[:i]
		}
	}
	return v, true
}

func main() {
	var baselinePaths []string
	flag.Func("baseline", "baseline JSON with *_overhead_variants_after tables (repeatable)",
		func(s string) error { baselinePaths = append(baselinePaths, s); return nil })
	var (
		maxRegress = flag.Float64("max-regress-pct", 10, "fail when a variant is this much slower than baseline")
		normalize  = flag.String("normalize", "", "canary variant to ratio both sides against, per table (portable gate)")
	)
	flag.Parse()
	if len(baselinePaths) == 0 {
		baselinePaths = []string{"BENCH_PR1.json"}
	}

	var tables []*gateTable
	for _, path := range baselinePaths {
		raw, err := os.ReadFile(path)
		if err != nil {
			fatalf("read baseline: %v", err)
		}
		var base baselineFile
		if err := json.Unmarshal(raw, &base); err != nil {
			fatalf("parse baseline %s: %v", path, err)
		}
		if len(base.DelegateVariants) > 0 {
			tables = append(tables, &gateTable{
				bench: "BenchmarkDelegateOverhead", source: path, pr: base.PR,
				variants: base.DelegateVariants,
			})
		}
		if len(base.RecursiveVariants) > 0 {
			tables = append(tables, &gateTable{
				bench: "BenchmarkRecursiveOverhead", source: path, pr: base.PR,
				variants: base.RecursiveVariants,
			})
		}
		if len(base.SkewedVariants) > 0 {
			tables = append(tables, &gateTable{
				bench: "BenchmarkRecursiveSkewed", source: path, pr: base.PR,
				variants: base.SkewedVariants,
			})
		}
		if len(base.DelegateVariants) == 0 && len(base.RecursiveVariants) == 0 &&
			len(base.SkewedVariants) == 0 {
			fatalf("baseline %s has no *_variants_after table", path)
		}
	}

	// got[bench][variant] is the fastest measurement seen for the variant.
	got := map[string]map[string]measured{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the bench output through for the CI log
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		for _, tbl := range tables {
			variant, ok := parseBench(m[1], tbl.bench, tbl.variants)
			if !ok {
				continue
			}
			cur, ok := parseMetrics(m[2])
			if !ok {
				continue
			}
			byVariant := got[tbl.bench]
			if byVariant == nil {
				byVariant = map[string]measured{}
				got[tbl.bench] = byVariant
			}
			if prev, seen := byVariant[variant]; !seen || cur.nsOp < prev.nsOp {
				byVariant[variant] = cur
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("read stdin: %v", err)
	}
	if len(got) == 0 {
		fatalf("no gated benchmark results on stdin — did the bench run?")
	}

	failed := false
	for _, tbl := range tables {
		byVariant := got[tbl.bench]
		if byVariant == nil {
			fmt.Printf("benchgate: no %s results on stdin for %s [FAIL]\n", tbl.bench, tbl.source)
			failed = true
			continue
		}
		canaryScale := 1.0
		if *normalize != "" {
			cur, okCur := byVariant[*normalize]
			baseV, okBase := tbl.variants[*normalize]
			if !okCur || !okBase {
				fatalf("%s: normalize variant %q missing (measured: %v, baseline: %v)",
					tbl.bench, *normalize, okCur, okBase)
			}
			canaryScale = baseV.NsOp / cur.nsOp
		}
		for variant, baseV := range tbl.variants {
			cur, ok := byVariant[variant]
			if !ok {
				// A missing variant means the bench run was cut short (panic,
				// deadlock kill, filter typo) — an unmeasured gate must not pass.
				fmt.Printf("benchgate: %s variant %q in baseline but not measured [FAIL]\n", tbl.bench, variant)
				failed = true
				continue
			}
			effective := cur.nsOp * canaryScale
			deltaPct := 100 * (effective - baseV.NsOp) / baseV.NsOp
			status := "ok"
			if variant != *normalize && deltaPct > *maxRegress {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("benchgate: %-28s %-20s baseline %8.2f ns/op, measured %8.2f (scaled %8.2f), delta %+6.1f%% [%s]\n",
				tbl.bench, variant, baseV.NsOp, cur.nsOp, effective, deltaPct, status)
			if cur.haveMem && cur.allocsOp > baseV.AllocsOp {
				fmt.Printf("benchgate: %-28s %-20s allocs/op %.0f, baseline %.0f [FAIL]\n",
					tbl.bench, variant, cur.allocsOp, baseV.AllocsOp)
				failed = true
			}
		}
	}
	if failed {
		fmt.Printf("benchgate: FAIL — hot-path regression beyond %.0f%% vs %s\n",
			*maxRegress, strings.Join(baselinePaths, ", "))
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}

// parseMetrics reads the "value unit value unit ..." tail of a bench row.
func parseMetrics(tail string) (measured, bool) {
	fields := strings.Fields(tail)
	var m measured
	okNs := false
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return m, false
		}
		switch fields[i+1] {
		case "ns/op":
			m.nsOp, okNs = v, true
		case "allocs/op":
			m.allocsOp, m.haveMem = v, true
		}
	}
	return m, okNs
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
