// Command ssserve runs the serialization-sets serving tier: an HTTP
// frontend that hashes each request's session key to a serialization set
// and delegates its handler there, so concurrent connections get per-key
// causal order, skewed keys are rebalanced by whole-set stealing, and a
// panicking request is contained — its key fails fast for the rest of the
// epoch while every other key keeps serving.
//
// The built-in handler is a per-session counter/KV API, enough to
// exercise and demonstrate the ordering and containment properties:
//
//	GET  /bump?key=K            increment K's sequence, return "seq=N"
//	GET  /get?key=K&k=NAME      read NAME from K's KV, return its value
//	POST /set?key=K&k=NAME&v=V  write NAME=V into K's KV
//	any  + header X-Chaos-Panic: 1   the handler panics (chaos injection)
//	GET  /metrics               Prometheus text exposition
//	GET  /healthz               200, or 503 while draining
//	POST /admin/resize?n=N      resize the delegate pool (requires -max-delegates)
//
// The session key comes from the X-Session-Key header or the key query
// parameter. On SIGTERM/SIGINT the server drains: the listener stops
// accepting, admitted requests are served to completion, the final epoch
// barrier runs, and stragglers past -drain-timeout are reported with the
// runtime's scheduler dump.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/durable"
	"repro/internal/serve"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		delegates     = flag.Int("delegates", 0, "delegate contexts (0 = GOMAXPROCS-1)")
		shards        = flag.Int("shards", 8, "latency-metric set shards")
		maxInflight   = flag.Int("max-inflight", 1024, "admission budget (503 above it)")
		rate          = flag.Float64("rate", 0, "per-key token-bucket rate, requests/sec (0 = off)")
		burst         = flag.Float64("burst", 10, "per-key token-bucket burst")
		epochInterval = flag.Duration("epoch-interval", 100*time.Millisecond, "isolation-epoch rotation period")
		drainTimeout  = flag.Duration("drain-timeout", 5*time.Second, "graceful-drain straggler deadline")

		// Elastic pool.
		maxDelegates = flag.Int("max-delegates", 0, "delegate pool capacity; enables /admin/resize and live resizing (0 = fixed pool)")
		minDelegates = flag.Int("min-delegates", 1, "autoscaler floor (manual resizes may go below)")
		autoscale    = flag.Bool("autoscale", false, "scale the pool at epoch rotations from queue occupancy (requires -max-delegates)")
		cooldown     = flag.Int("autoscale-cooldown", 3, "rotations between autoscaler steps")

		// Durable sessions.
		stateDir  = flag.String("state-dir", "", "session state directory: snapshots + journal, recovered at boot (empty = sessions die with the process)")
		fsyncMode = flag.String("fsync", "rotation", "journal fsync policy: off (buffered), rotation (sync per epoch, <=1 epoch acked loss), always (sync per request, zero acked loss)")
		journal   = flag.Bool("journal", true, "intra-epoch journal (false = snapshot-only durability, <=1 epoch loss regardless of -fsync)")

		// Robustness layer.
		reqTimeout    = flag.Duration("request-timeout", 0, "per-request budget, fixed at admission (0 = no deadlines)")
		retries       = flag.Int("retries", 0, "max retry attempts for idempotent requests")
		retryBase     = flag.Duration("retry-base", 2*time.Millisecond, "retry backoff base (doubles per attempt, jittered)")
		slowThreshold = flag.Duration("slow-threshold", 0, "slow-key watchdog service-time threshold (0 = off)")
		slowTrips     = flag.Int("slow-trips", 3, "consecutive slow services that degrade a key")
		backends      = flag.String("backends", "", "comma-separated upstream base URLs; requests proxy to a breaker-gated pool instead of the in-process handler")
		breakerThresh = flag.Int("breaker-threshold", 5, "consecutive failures that open a backend's breaker")
		breakerCool   = flag.Duration("breaker-cooldown", time.Second, "open-breaker cooldown before a half-open probe")

		// Chaos injection (deterministic; for harness runs, not production).
		flakyBackend = flag.Bool("flaky-backend", false, "serve from a 2-backend in-process pool whose second member carries the chaos profile below")
		chaosSeed    = flag.Uint64("chaos-seed", 1, "chaos determinism seed")
		chaosErrRate = flag.Float64("chaos-error-rate", 0, "seeded per-op backend error probability on the flaky backend")
		chaosSpikeN  = flag.Int("chaos-spike-every", 0, "inject a latency spike every Nth op per key on the flaky backend (0 = off)")
		chaosSpike   = flag.Duration("chaos-spike", 200*time.Millisecond, "latency-spike duration")
		chaosFlap    = flag.String("chaos-flap", "", "flap window FROM:TO in flaky-backend op counts, e.g. 100:160 (hard-down between them)")
	)
	flag.Parse()

	backend, err := buildBackend(buildOpts{
		upstreams:     *backends,
		flaky:         *flakyBackend,
		breakerThresh: *breakerThresh,
		breakerCool:   *breakerCool,
		seed:          *chaosSeed,
		errRate:       *chaosErrRate,
		spikeEvery:    *chaosSpikeN,
		spike:         *chaosSpike,
		flap:          *chaosFlap,
	})
	if err != nil {
		log.Fatalf("ssserve: %v", err)
	}

	cfg := serve.Config{
		Delegates:         *delegates,
		MaxDelegates:      *maxDelegates,
		MinDelegates:      *minDelegates,
		Autoscale:         *autoscale,
		AutoscaleCooldown: *cooldown,
		Shards:            *shards,
		MaxInflight:       *maxInflight,
		Rate:              *rate,
		Burst:             *burst,
		EpochInterval:     *epochInterval,
		DrainTimeout:      *drainTimeout,
		RequestTimeout:    *reqTimeout,
		RetryMax:          *retries,
		RetryBase:         *retryBase,
		SlowThreshold:     *slowThreshold,
		SlowTrips:         *slowTrips,
		Logf:              log.Printf,
	}
	if backend != nil {
		cfg.Backend = backend
	} else {
		cfg.Handler = handle
	}
	if *stateDir != "" {
		fs, err := durable.NewDirFS(*stateDir)
		if err != nil {
			log.Fatalf("ssserve: %v", err)
		}
		pol, err := durable.ParseFsync(*fsyncMode)
		if err != nil {
			log.Fatalf("ssserve: %v", err)
		}
		cfg.StateFS = fs
		cfg.Fsync = pol
		cfg.NoJournal = !*journal
	}
	srv, err := serve.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *stateDir != "" {
		sessions, truncated := srv.Recovered()
		log.Printf("ssserve: recovered %d sessions from %s (fsync=%s, %d journal records truncated)",
			sessions, *stateDir, *fsyncMode, truncated)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("ssserve: listening on %s", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		log.Fatalf("ssserve: listener failed: %v", err)
	case s := <-sig:
		log.Printf("ssserve: %v: draining", s)
	}

	// Drain order: stop accepting and wait for inflight HTTP handlers
	// first (they need the router alive to answer), then drain the router
	// itself — final barrier, sweep, terminate.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout+time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("ssserve: listener shutdown: %v", err)
	}
	if err := srv.Drain(); err != nil {
		log.Printf("ssserve: %v", err)
		os.Exit(1)
	}
	log.Printf("ssserve: drained cleanly")
}

type buildOpts struct {
	upstreams     string
	flaky         bool
	breakerThresh int
	breakerCool   time.Duration
	seed          uint64
	errRate       float64
	spikeEvery    int
	spike         time.Duration
	flap          string
}

// buildBackend translates the backend/chaos flags into a serve.Backend:
// nil (plain in-process handler), a breaker-gated pool of HTTP
// upstreams, or the two-member in-process pool whose second backend
// carries the chaos profile — the shape the loadgen smoke job boots.
func buildBackend(o buildOpts) (serve.Backend, error) {
	if o.upstreams != "" && o.flaky {
		return nil, fmt.Errorf("-backends and -flaky-backend are mutually exclusive")
	}
	switch {
	case o.upstreams != "":
		var members []serve.Backend
		for i, u := range strings.Split(o.upstreams, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			hb, err := serve.NewHTTPBackend(fmt.Sprintf("upstream-%d", i), u, nil)
			if err != nil {
				return nil, err
			}
			members = append(members, hb)
		}
		if len(members) == 0 {
			return nil, fmt.Errorf("-backends given but no usable URLs")
		}
		return serve.NewPool(o.breakerThresh, o.breakerCool, members...), nil
	case o.flaky:
		flaky := &serve.ChaosBackend{Inner: serve.NewHandlerBackend("flaky", handle)}
		if o.errRate > 0 {
			flaky.Errors = chaos.SeededErrors(o.seed, o.errRate)
		}
		if o.spikeEvery > 0 {
			flaky.Latency = chaos.SpikeEvery(uint64(o.spikeEvery), o.spike)
		}
		if o.flap != "" {
			from, to, err := parseFlap(o.flap)
			if err != nil {
				return nil, err
			}
			flaky.Flap = chaos.FlapBetween(from, to)
		}
		return serve.NewPool(o.breakerThresh, o.breakerCool,
			serve.NewHandlerBackend("steady", handle), flaky), nil
	default:
		return nil, nil
	}
}

func parseFlap(s string) (from, to uint64, err error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("-chaos-flap %q: want FROM:TO", s)
	}
	if from, err = strconv.ParseUint(a, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("-chaos-flap %q: %v", s, err)
	}
	if to, err = strconv.ParseUint(b, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("-chaos-flap %q: %v", s, err)
	}
	return from, to, nil
}

// handle is the per-session request handler, executed on a delegate
// context with the session's set serializing it against every other
// request for the same key.
func handle(s *serve.Session, r *http.Request) (int, string) {
	if r.Header.Get("X-Chaos-Panic") == "1" {
		panic(fmt.Sprintf("chaos: injected panic for key %q (seq %d)", s.Key, s.Seq))
	}
	q := r.URL.Query()
	switch r.URL.Path {
	case "/bump", "/":
		return http.StatusOK, fmt.Sprintf("key=%s seq=%d\n", s.Key, s.Seq)
	case "/get":
		v, ok := s.Data[q.Get("k")]
		if !ok {
			return http.StatusNotFound, "not found\n"
		}
		return http.StatusOK, v + "\n"
	case "/set":
		s.Data[q.Get("k")] = q.Get("v")
		return http.StatusOK, "ok\n"
	default:
		return http.StatusNotFound, "unknown path\n"
	}
}
