// Command ssserve runs the serialization-sets serving tier: an HTTP
// frontend that hashes each request's session key to a serialization set
// and delegates its handler there, so concurrent connections get per-key
// causal order, skewed keys are rebalanced by whole-set stealing, and a
// panicking request is contained — its key fails fast for the rest of the
// epoch while every other key keeps serving.
//
// The built-in handler is a per-session counter/KV API, enough to
// exercise and demonstrate the ordering and containment properties:
//
//	GET  /bump?key=K            increment K's sequence, return "seq=N"
//	GET  /get?key=K&k=NAME      read NAME from K's KV, return its value
//	POST /set?key=K&k=NAME&v=V  write NAME=V into K's KV
//	any  + header X-Chaos-Panic: 1   the handler panics (chaos injection)
//	GET  /metrics               Prometheus text exposition
//	GET  /healthz               200, or 503 while draining
//
// The session key comes from the X-Session-Key header or the key query
// parameter. On SIGTERM/SIGINT the server drains: the listener stops
// accepting, admitted requests are served to completion, the final epoch
// barrier runs, and stragglers past -drain-timeout are reported with the
// runtime's scheduler dump.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		delegates     = flag.Int("delegates", 0, "delegate contexts (0 = GOMAXPROCS-1)")
		shards        = flag.Int("shards", 8, "latency-metric set shards")
		maxInflight   = flag.Int("max-inflight", 1024, "admission budget (503 above it)")
		rate          = flag.Float64("rate", 0, "per-key token-bucket rate, requests/sec (0 = off)")
		burst         = flag.Float64("burst", 10, "per-key token-bucket burst")
		epochInterval = flag.Duration("epoch-interval", 100*time.Millisecond, "isolation-epoch rotation period")
		drainTimeout  = flag.Duration("drain-timeout", 5*time.Second, "graceful-drain straggler deadline")
	)
	flag.Parse()

	srv, err := serve.New(serve.Config{
		Delegates:     *delegates,
		Shards:        *shards,
		MaxInflight:   *maxInflight,
		Rate:          *rate,
		Burst:         *burst,
		EpochInterval: *epochInterval,
		DrainTimeout:  *drainTimeout,
		Handler:       handle,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("ssserve: listening on %s", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		log.Fatalf("ssserve: listener failed: %v", err)
	case s := <-sig:
		log.Printf("ssserve: %v: draining", s)
	}

	// Drain order: stop accepting and wait for inflight HTTP handlers
	// first (they need the router alive to answer), then drain the router
	// itself — final barrier, sweep, terminate.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout+time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("ssserve: listener shutdown: %v", err)
	}
	if err := srv.Drain(); err != nil {
		log.Printf("ssserve: %v", err)
		os.Exit(1)
	}
	log.Printf("ssserve: drained cleanly")
}

// handle is the per-session request handler, executed on a delegate
// context with the session's set serializing it against every other
// request for the same key.
func handle(s *serve.Session, r *http.Request) (int, string) {
	if r.Header.Get("X-Chaos-Panic") == "1" {
		panic(fmt.Sprintf("chaos: injected panic for key %q (seq %d)", s.Key, s.Seq))
	}
	q := r.URL.Query()
	switch r.URL.Path {
	case "/bump", "/":
		return http.StatusOK, fmt.Sprintf("key=%s seq=%d\n", s.Key, s.Seq)
	case "/get":
		v, ok := s.Data[q.Get("k")]
		if !ok {
			return http.StatusNotFound, "not found\n"
		}
		return http.StatusOK, v + "\n"
	case "/set":
		s.Data[q.Get("k")] = q.Get("v")
		return http.StatusOK, "ok\n"
	default:
		return http.StatusNotFound, "unknown path\n"
	}
}
