// Recursive delegation (the paper's §4/§7 future-work extension,
// implemented here): a parallel quicksort where each delegated partition
// step delegates its two halves from inside the delegate context via
// Ctx.Delegate — no fork/join scaffolding in user code, and EndIsolation's
// quiescence barrier waits for the whole recursion tree.
//
//	go run ./examples/quicksort
package main

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	prometheus "repro"
)

const (
	n      = 1 << 20
	cutoff = 1 << 12 // below this, sort sequentially
)

var nextSet atomic.Uint64

// qsort partitions data and recursively delegates the halves. Each
// recursive call gets a fresh serialization set, so sibling halves sort
// concurrently; disjoint slices mean disjoint writable domains.
func qsort(c *prometheus.Ctx, data []int32) {
	if len(data) < cutoff {
		sort.Slice(data, func(i, j int) bool { return data[i] < data[j] })
		return
	}
	pivot := median3(data)
	lo, hi := 0, len(data)-1
	for lo <= hi {
		for data[lo] < pivot {
			lo++
		}
		for data[hi] > pivot {
			hi--
		}
		if lo <= hi {
			data[lo], data[hi] = data[hi], data[lo]
			lo++
			hi--
		}
	}
	left, right := data[:hi+1], data[lo:]
	c.Delegate(nextSet.Add(1), func(c2 *prometheus.Ctx) { qsort(c2, left) })
	c.Delegate(nextSet.Add(1), func(c2 *prometheus.Ctx) { qsort(c2, right) })
}

func median3(d []int32) int32 {
	a, b, c := d[0], d[len(d)/2], d[len(d)-1]
	switch {
	case (a <= b && b <= c) || (c <= b && b <= a):
		return b
	case (b <= a && a <= c) || (c <= a && a <= b):
		return a
	default:
		return c
	}
}

func main() {
	rt := prometheus.Init(prometheus.Recursive())
	defer rt.Terminate()

	r := rand.New(rand.NewSource(42))
	data := make([]int32, n)
	for i := range data {
		data[i] = r.Int31()
	}

	rt.BeginIsolation()
	root := prometheus.NewWritable(rt, data)
	root.Delegate(func(c *prometheus.Ctx, d *[]int32) { qsort(c, *d) })
	rt.EndIsolation() // quiescence barrier: waits for the full recursion

	sorted := sort.SliceIsSorted(data, func(i, j int) bool { return data[i] < data[j] })
	fmt.Printf("sorted %d elements with recursive delegation: %v\n", n, sorted)
	st := rt.Stats()
	fmt.Printf("program-context delegations: %d (recursive delegations happen inside delegates)\n",
		st.Delegations)
}
