// External serializers (paper §2.1): matrix multiplication where the
// serialization set of each element's multiply operation is its row index
// — information available at the delegation site but deliberately not
// stored in the element. Serializing whole rows also improves spatial
// locality, the exact trade-off §2.1 discusses.
//
//	go run ./examples/matrix
package main

import (
	"fmt"
	"math"

	prometheus "repro"
)

const n = 384

// matrix is row-major.
type matrix struct {
	data []float64
}

func newMatrix(fill func(i, j int) float64) *matrix {
	m := &matrix{data: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.data[i*n+j] = fill(i, j)
		}
	}
	return m
}

func main() {
	rt := prometheus.Init()
	defer rt.Terminate()

	a := prometheus.NewReadOnly(rt, newMatrix(func(i, j int) float64 {
		return float64(i+1) / float64(j+1)
	}))
	bm := prometheus.NewReadOnly(rt, newMatrix(func(i, j int) float64 {
		return float64(j-i) * 0.25
	}))
	// The result matrix uses the Null serializer: sets are supplied
	// externally at each delegation site.
	c := prometheus.NewWritableSer(rt, matrix{data: make([]float64, n*n)},
		prometheus.NullSerializer[matrix]())

	am, bmat := (*a.Get()).data, (*bm.Get()).data
	rt.BeginIsolation()
	for i := 0; i < n; i++ {
		row := i
		// External serializer: the row number. All element multiplies of a
		// row share a set (locality); different rows run in parallel.
		c.DelegateTo(uint64(row), func(ctx *prometheus.Ctx, out *matrix) {
			for j := 0; j < n; j++ {
				var sum float64
				for k := 0; k < n; k++ {
					sum += am[row*n+k] * bmat[k*n+j]
				}
				out.data[row*n+j] = sum
			}
		})
	}
	rt.EndIsolation()

	// Spot-check against a direct computation.
	var worst float64
	c.Call(func(out *matrix) {
		for _, probe := range [][2]int{{0, 0}, {n / 2, n / 3}, {n - 1, n - 1}} {
			i, j := probe[0], probe[1]
			var want float64
			for k := 0; k < n; k++ {
				want += am[i*n+k] * bmat[k*n+j]
			}
			if d := math.Abs(out.data[i*n+j] - want); d > worst {
				worst = d
			}
		}
	})
	fmt.Printf("multiplied %dx%d matrices; max spot-check error %.2e\n", n, n, worst)
	fmt.Printf("runtime: %d delegations across %d delegate contexts\n",
		rt.Stats().Delegations, rt.NumDelegates())
}
