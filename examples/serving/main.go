// Serving: serialization sets as a session-affinity request router — the
// public form of the serving tier (internal/serve, cmd/ssserve) driven
// in-process, no sockets needed.
//
// Every request carries a session key; the key hashes to a serialization
// set; the handler for the request is delegated to that set. The model
// then gives the serving property for free: requests for one key execute
// in arrival order on one delegate at a time — per-key causal order with
// no per-session locks — while requests for different keys run
// concurrently across the delegate pool, rebalanced by whole-set stealing
// when the key distribution skews.
//
// The program runs three phases and prints what the runtime observed:
//
//  1. Skewed load: concurrent clients hammer two hot keys and a spread of
//     cold ones; each response returns the session's sequence number and
//     every client asserts it only ever sees its key's sequence increase.
//  2. Chaos: one request for the key "unlucky" panics inside its handler.
//     The panic is contained — that request and the key's follow-ups this
//     epoch fail fast with the fault attached, siblings keep serving, and
//     the next epoch rotation heals the key.
//  3. Graceful drain: the server stops admitting, serves everything
//     already accepted, runs the final epoch barrier, and terminates.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

func request(h http.Handler, key string, chaos bool) (int, string) {
	r := httptest.NewRequest("GET", "/bump", nil)
	r.Header.Set("X-Session-Key", key)
	if chaos {
		r.Header.Set("X-Chaos-Panic", "1")
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w.Code, w.Body.String()
}

func main() {
	srv, err := serve.New(serve.Config{
		Delegates:     4,
		EpochInterval: 10 * time.Millisecond,
		Handler: func(s *serve.Session, r *http.Request) (int, string) {
			if r.Header.Get("X-Chaos-Panic") == "1" {
				panic(fmt.Sprintf("chaos: handler fault for key %q", s.Key))
			}
			return http.StatusOK, fmt.Sprintf("%d", s.Seq)
		},
	})
	if err != nil {
		panic(err)
	}
	h := srv.Handler()

	// Phase 1: skewed concurrent load with per-key ordering asserted.
	var (
		wg        sync.WaitGroup
		served    atomic.Uint64
		disorders atomic.Uint64
	)
	client := func(key string, n int) {
		defer wg.Done()
		last := -1
		for i := 0; i < n; i++ {
			code, body := request(h, key, false)
			if code != http.StatusOK {
				continue
			}
			served.Add(1)
			seq := 0
			fmt.Sscanf(body, "%d", &seq)
			if seq <= last {
				disorders.Add(1)
			}
			last = seq
		}
	}
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go client(fmt.Sprintf("hot-%d", i%2), 200) // 6 clients on 2 hot keys
	}
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go client(fmt.Sprintf("cold-%d", i), 50)
	}
	wg.Wait()
	fmt.Printf("skewed load: %d requests served, %d ordering violations\n",
		served.Load(), disorders.Load())

	// Phase 2: chaos on one key; siblings unaffected; the key heals.
	code, _ := request(h, "unlucky", true)
	fmt.Printf("chaos request: status %d (fault contained, key poisoned)\n", code)
	code, body := request(h, "unlucky", false)
	fmt.Printf("follow-up on poisoned key: status %d, detail attached: %v\n",
		code, len(body) > 0 && code == http.StatusInternalServerError)
	if code, _ := request(h, "hot-0", false); code == http.StatusOK {
		fmt.Println("sibling key: still serving")
	}
	healed := false
	for i := 0; i < 100 && !healed; i++ {
		time.Sleep(10 * time.Millisecond)
		if code, _ := request(h, "unlucky", false); code == http.StatusOK {
			healed = true
		}
	}
	fmt.Printf("poisoned key healed by epoch rotation: %v\n", healed)

	// Phase 3: graceful drain, then the runtime's own account of the run.
	if err := srv.Drain(); err != nil {
		fmt.Printf("drain: %v\n", err)
		return
	}
	st := srv.Stats()
	fmt.Printf("drained cleanly: epochs=%d delegations=%d steals=%d panics=%d dropped=%d\n",
		st.Epochs, st.Delegations, st.Steals, st.Panics, st.DroppedOps)
}
