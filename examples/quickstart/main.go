// Quickstart: the smallest useful serialization-sets program.
//
// A batch of independent accumulators is updated in parallel — operations
// on the same accumulator stay in program order (same serialization set),
// operations on different accumulators run concurrently — and a reducible
// sum collects a global statistic without a single lock.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	prometheus "repro"
	"repro/coll"
)

type accumulator struct {
	total int64
	ops   int
}

func main() {
	// Init starts the runtime; the calling goroutine becomes the program
	// context (paper: initialize()).
	rt := prometheus.Init()
	defer rt.Terminate()

	// Writable wrappers place each accumulator in its own privately-
	// writable domain; the default sequence serializer gives every wrapper
	// its own serialization set.
	accs := make([]*prometheus.Writable[accumulator], 8)
	for i := range accs {
		accs[i] = prometheus.NewWritable(rt, accumulator{})
	}
	grand := coll.NewSum[int64](rt)

	// Isolation epoch: delegated operations on different sets run in
	// parallel; per-set program order is preserved, so the final state is
	// deterministic — identical to running this loop sequentially.
	rt.BeginIsolation()
	for round := 1; round <= 1000; round++ {
		v := int64(round)
		for _, w := range accs {
			w.Delegate(func(c *prometheus.Ctx, a *accumulator) {
				a.total += v
				a.ops++
				grand.Add(c, v)
			})
		}
	}
	rt.EndIsolation()

	// Back in an aggregation epoch: plain sequential code again. The first
	// use of the reducible folds the per-context views.
	for i, w := range accs {
		total := prometheus.Call(w, func(a *accumulator) int64 { return a.total })
		fmt.Printf("accumulator %d: total=%d\n", i, total)
	}
	fmt.Printf("grand total: %d (want %d)\n", grand.Result(), int64(8)*1000*1001/2)
}
