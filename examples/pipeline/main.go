// Pipeline parallelism (paper Figure 2): a three-stage image-processing
// pipeline over a stream of frames. Delegating all three stages of a frame
// to the frame's serialization set keeps the stages of one frame in order
// while different frames flow through the pipeline concurrently — no
// channels, no stage threads, no reorder buffer.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"

	prometheus "repro"
)

const (
	frameW, frameH = 256, 256
	frames         = 64
)

type frame struct {
	id     int
	pixels []float64
	mean   float64
}

// Stage 1: deterministic synthetic capture.
func capturePixels(f *frame) {
	f.pixels = make([]float64, frameW*frameH)
	for i := range f.pixels {
		f.pixels[i] = float64((i*31 + f.id*17) % 251)
	}
}

// Stage 2: 3x1 box blur.
func blur(f *frame) {
	out := make([]float64, len(f.pixels))
	for i := range f.pixels {
		sum, n := f.pixels[i], 1.0
		if i > 0 {
			sum, n = sum+f.pixels[i-1], n+1
		}
		if i < len(f.pixels)-1 {
			sum, n = sum+f.pixels[i+1], n+1
		}
		out[i] = sum / n
	}
	f.pixels = out
}

// Stage 3: statistics.
func analyze(f *frame) {
	var sum float64
	for _, p := range f.pixels {
		sum += p
	}
	f.mean = sum / float64(len(f.pixels))
}

func main() {
	rt := prometheus.Init()
	defer rt.Terminate()

	ws := make([]*prometheus.Writable[frame], frames)
	for i := range ws {
		ws[i] = prometheus.NewWritable(rt, frame{id: i})
	}

	// Figure 2, pipeline parallelism: per object, delegate each stage in
	// order. Same object -> same serialization set -> stages run in order;
	// different frames overlap arbitrarily.
	rt.BeginIsolation()
	for _, w := range ws {
		w.Delegate(func(c *prometheus.Ctx, f *frame) { capturePixels(f) })
		w.Delegate(func(c *prometheus.Ctx, f *frame) { blur(f) })
		w.Delegate(func(c *prometheus.Ctx, f *frame) { analyze(f) })
	}
	rt.EndIsolation()

	for i := 0; i < 5; i++ {
		mean := prometheus.Call(ws[i], func(f *frame) float64 { return f.mean })
		fmt.Printf("frame %2d: mean=%.3f\n", i, mean)
	}
	fmt.Printf("processed %d frames through 3 stages\n", frames)
}
