// Skewed: a recursive producer with a 90/10-skewed set distribution — the
// workload shape whole-set work stealing exists for, and the public form
// of the benchmark suite's A6 ablation.
//
// One delegated operation acts as a producer: from its execution context
// it streams delegations where 90% of the operations land on four "hot"
// serialization sets that the static assignment table co-homes on ONE
// delegate, while the rest spread across the others. Each operation blocks
// briefly (a stand-in for I/O-bound work), so placement shows up directly
// in wall clock: statically, one delegate serializes ~90% of the sleeps
// while its peers idle; with the occupancy-aware rebalancer
// (WithPolicy(LeastLoaded) + WithStealing) the hot sets migrate to idle
// delegates at their first quiescent boundary and the blocked time
// overlaps. Per-set operation order — the model's determinism guarantee —
// is identical either way; only placement responds to load.
//
// The production is wave-throttled: a delegate-context producer never
// blocks on a full lane (that is what keeps self-delegation and
// delegation cycles deadlock-free), so an unthrottled stream would grow
// the lanes without bounding occupancy. Each wave ends with one marker
// operation per hot set and a wait until all markers have run — which is
// also what creates the quiescent boundaries the rebalancer migrates at.
//
//	go run ./examples/skewed
package main

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	prometheus "repro"
)

const (
	delegates = 4
	waves     = 10
	runLen    = 8 // consecutive operations per hot set, then one cold op
)

// Against the static table for 4 delegates (16 virtual delegates,
// vmap[v] = v%4+1): sets 0,4,8,12 all seed on delegate 1 — the pile-up —
// while the cold sets spread over delegates 3 and 4. Set 1 (the producer's
// own operation) seeds on delegate 2, so neither list may contain it.
var (
	hotSets  = []uint64{0, 4, 8, 12}
	coldSets = []uint64{2, 6, 3, 7}
)

// produce streams the skewed waves from inside the producer's context.
func produce(c *prometheus.Ctx) {
	var done atomic.Int64
	opsPerWave := len(hotSets) * (runLen + 1)
	blocking := func(*prometheus.Ctx) { time.Sleep(20 * time.Microsecond) }
	for wave := 0; wave < waves; wave++ {
		for k := 0; k < opsPerWave; k++ {
			run := k / (runLen + 1)
			set := hotSets[run%len(hotSets)]
			if k%(runLen+1) == runLen {
				set = coldSets[run%len(coldSets)]
			}
			c.Delegate(set, blocking)
		}
		markers := int64(0)
		for _, h := range hotSets {
			c.Delegate(h, func(*prometheus.Ctx) { done.Add(1) })
			markers++
		}
		for done.Load() < markers {
			runtime.Gosched()
		}
		done.Store(0)
	}
}

// run executes the workload under the given options and reports wall
// clock plus the scheduling counters that attribute any win.
func run(label string, opts ...prometheus.Option) time.Duration {
	all := append([]prometheus.Option{
		prometheus.WithDelegates(delegates),
		prometheus.Recursive(),
	}, opts...)
	rt := prometheus.Init(all...)
	defer rt.Terminate()
	w := prometheus.NewWritable(rt, 0)

	start := time.Now()
	rt.BeginIsolation()
	w.DelegateTo(1, func(c *prometheus.Ctx, _ *int) { produce(c) })
	rt.EndIsolation() // barrier: the backlog completes inside the timing
	elapsed := time.Since(start)

	st := rt.Stats()
	fmt.Printf("%-10s %8.2f ms   handoffs=%d forced-evacs=%d outbound-vetoes=%d thr-adjusts=%d spills=%d\n",
		label, 1e3*elapsed.Seconds(),
		st.Handoffs, st.ForcedEvacs, st.OutboundVetoes, st.ThresholdAdjusts, st.Spills)
	return elapsed
}

func main() {
	fmt.Printf("recursive 90/10 skew: %d delegates, %d waves x %d ops (hot sets co-homed on delegate 1)\n\n",
		delegates, waves, len(hotSets)*(runLen+1))
	static := run("static")
	steal := run("steal",
		prometheus.WithPolicy(prometheus.LeastLoaded),
		prometheus.WithStealing(),
	)
	fmt.Printf("\nstealing delta: %+.1f%% wall clock\n",
		100*(steal.Seconds()-static.Seconds())/static.Seconds())
}
