// The paper's Figure 3 program: reverse_index builds an index from link
// URLs to the HTML files containing them, overlapping the sequential
// directory walk with delegated per-file link extraction.
//
// The program structure follows the paper literally: find_files recurses
// in the program context; each file's find_links is delegated on a
// writable file object (sequence serializer); the link map is a reducible
// map whose per-link file sets merge during the reduction, triggered by
// the first use after end_isolation.
//
//	go run ./examples/reverse_index
package main

import (
	"fmt"
	"sort"

	prometheus "repro"
	"repro/coll"
	"repro/internal/apps/reverseindex"
	"repro/internal/vfs"
	"repro/internal/workload"
)

func main() {
	rt := prometheus.Init()
	defer rt.Terminate()

	// A small synthetic HTML tree stands in for the paper's on-disk corpus.
	cfg := workload.HTMLSize(workload.Small)
	cfg.Files, cfg.Dirs, cfg.URLPool = 200, 15, 60
	fs := vfs.FromHTMLTree(workload.GenerateHTMLTree(cfg))
	fmt.Println("corpus:", fs.Stats())

	type fileSet = map[string]struct{}
	linkMap := coll.NewMap[string, fileSet](rt, func(into, add fileSet) fileSet {
		for f := range add {
			into[f] = struct{}{}
		}
		return into
	})

	rt.BeginIsolation()
	fs.Walk(func(f *vfs.File) { // find_files: program-context recursion
		w := prometheus.NewWritable(rt, f)
		w.Delegate(func(c *prometheus.Ctx, file **vfs.File) { // find_links
			path := (*file).Path
			reverseindex.ExtractLinks((*file).Content, func(url string) {
				linkMap.Update(c, url, func(s fileSet) fileSet {
					if s == nil {
						s = fileSet{}
					}
					s[path] = struct{}{}
					return s
				})
			})
		})
	})
	rt.EndIsolation()

	// First aggregation-epoch use reduces the link map (Figure 3, L/M).
	index := linkMap.Result()
	urls := make([]string, 0, len(index))
	for url := range index {
		urls = append(urls, url)
	}
	sort.Slice(urls, func(i, j int) bool { return len(index[urls[i]]) > len(index[urls[j]]) })
	fmt.Printf("indexed %d distinct links; top 5 by file count:\n", len(urls))
	for _, url := range urls[:5] {
		fmt.Printf("  %-45s in %d files\n", url, len(index[url]))
	}
}
