// Task parallelism over per-entity serialization sets: a bank processes a
// transaction log. All operations on one account map to that account's
// serialization set, so per-account balances evolve in program order with
// no locks, while different accounts settle concurrently. A transfer
// touches two accounts, so the program context reclaims ownership of both
// (the dependent-operation case of paper §2, Figure 1's q operation).
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"math/rand"

	prometheus "repro"
)

type account struct {
	id      int
	balance int64
	history int
}

func main() {
	rt := prometheus.Init()
	defer rt.Terminate()

	const nAccounts = 32
	accounts := make([]*prometheus.Writable[account], nAccounts)
	for i := range accounts {
		accounts[i] = prometheus.NewWritable(rt, account{id: i, balance: 1000})
	}

	r := rand.New(rand.NewSource(7)) // deterministic log
	var transfers, deposits int

	rt.BeginIsolation()
	for op := 0; op < 20000; op++ {
		if r.Intn(10) == 0 {
			// Transfer: a dependent operation across two domains. Calls
			// reclaim ownership of both accounts (waiting for their
			// outstanding delegated deposits), then move the money in the
			// program context.
			from, to := r.Intn(nAccounts), r.Intn(nAccounts)
			if from == to {
				continue
			}
			amount := int64(r.Intn(50))
			ok := prometheus.Call(accounts[from], func(a *account) bool {
				if a.balance < amount {
					return false
				}
				a.balance -= amount
				return true
			})
			if ok {
				accounts[to].Call(func(a *account) { a.balance += amount })
			}
			transfers++
			continue
		}
		// Deposit: independent per-account work, delegated.
		amount := int64(r.Intn(100))
		deposits++
		accounts[r.Intn(nAccounts)].Delegate(func(c *prometheus.Ctx, a *account) {
			a.balance += amount
			a.history++
		})
	}
	rt.EndIsolation()

	var total int64
	for _, w := range accounts {
		total += prometheus.Call(w, func(a *account) int64 { return a.balance })
	}
	fmt.Printf("%d deposits, %d transfers across %d accounts\n", deposits, transfers, nAccounts)
	fmt.Printf("total balance: %d\n", total)
	st := rt.Stats()
	fmt.Printf("runtime: %d delegations, %d ownership reclaims\n", st.Delegations, st.Syncs)
}
