package prometheus_test

// BenchmarkRecursiveOverhead isolates the per-operation cost of recursive
// delegation — the extension that makes divide-and-conquer programs
// (quicksort, FPM, Barnes-Hut) expressible in the model (paper §4/§7). The
// variants measure end-to-end cost (delegation plus drain plus execution;
// the timed region closes with EndIsolation's quiescence barrier), because
// recursive lanes have no external backpressure observer: timing only the
// push side would reward an engine that defers all real work to the
// barrier. Run with -benchmem; the steady-state paths are required to
// report 0 allocs/op (see alloc_test.go for the hard gate), and
// cmd/benchgate gates these variants against BENCH_PR3.json.
//
// The nested variants issue delegations from inside a delegated operation
// in waves sized well below the lane capacity, waiting for marker
// operations between waves: a delegate-context producer never blocks (that
// could deadlock a delegation cycle), so an unthrottled producer on a
// small host would overrun the bounded lanes into the spill path and the
// benchmark would measure allocator throughput instead of the engine. The
// wave markers cost one closure per ~200 operations, amortized to ~0.

import (
	"runtime"
	"sync/atomic"
	"testing"

	prometheus "repro"
)

// nestedSink keeps the leaf operation from being optimized away; a plain
// add on the executing context's stack would not survive inlining proofs.
var nestedSink atomic.Int64

// nestedLeaf is a package-level func value: passing it to Ctx.Delegate
// involves no per-call closure allocation.
var nestedLeaf = func(*prometheus.Ctx) { nestedSink.Add(1) }

// nestedWaves issues n delegations from inside a delegated operation,
// round-robin over `fan` child sets, throttled in waves so at most
// perSet+1 operations are in flight per lane. The child sets are chosen to
// map to delegates other than the one running the producer: operations
// delegated to the producer's own context only run after the producer
// returns, so waiting on them mid-operation would deadlock (they exercise
// the spill path instead; see the recursive stress tests).
func nestedWaves(c *prometheus.Ctx, n, fan int, sets []uint64) {
	const perSet = 64
	var done atomic.Int64
	for issued := 0; issued < n; {
		markers := int64(0)
		for s := 0; s < fan && issued < n; s++ {
			set := sets[s]
			for k := 0; k < perSet && issued < n; k++ {
				c.Delegate(set, nestedLeaf)
				issued++
			}
			c.Delegate(set, func(*prometheus.Ctx) { done.Add(1) })
			markers++
		}
		for done.Load() < markers {
			runtime.Gosched()
		}
		done.Store(0)
	}
}

func BenchmarkRecursiveOverhead(b *testing.B) {
	// Root: the program context delegating into the recursive engine, one
	// serialization set — the entry every recursive program pays first.
	b.Run("root", func(b *testing.B) {
		b.ReportAllocs()
		rt := prometheus.Init(prometheus.WithDelegates(4), prometheus.Recursive())
		defer rt.Terminate()
		w := prometheus.NewWritable(rt, 0)
		rt.BeginIsolation()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Delegate(func(c *prometheus.Ctx, p *int) { *p++ })
		}
		rt.EndIsolation()
		b.StopTimer()
	})
	// Root spread over four wrappers, so consecutive delegations target
	// different delegates' lanes.
	b.Run("root-spread-4", func(b *testing.B) {
		b.ReportAllocs()
		rt := prometheus.Init(prometheus.WithDelegates(4), prometheus.Recursive())
		defer rt.Terminate()
		ws := make([]*prometheus.Writable[int], 4)
		for i := range ws {
			ws[i] = prometheus.NewWritable(rt, 0)
		}
		rt.BeginIsolation()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ws[i%4].Delegate(func(c *prometheus.Ctx, p *int) { *p++ })
		}
		rt.EndIsolation()
		b.StopTimer()
	})
	// Nested: delegate-context producers, the recursive engine's defining
	// path. One root operation issues b.N delegations over three child
	// sets mapped to the other three delegates (StaticMod, 16 virtual
	// delegates: the root wrapper's set 0 owns delegate 1; sets
	// 1001/1002/1003 map to delegates 2/3/4).
	b.Run("nested", func(b *testing.B) {
		b.ReportAllocs()
		rt := prometheus.Init(prometheus.WithDelegates(4), prometheus.Recursive())
		defer rt.Terminate()
		w := prometheus.NewWritable(rt, 0)
		n := b.N
		rt.BeginIsolation()
		b.ResetTimer()
		w.Delegate(func(c *prometheus.Ctx, p *int) {
			nestedWaves(c, n, 3, []uint64{1001, 1002, 1003})
		})
		rt.EndIsolation()
		b.StopTimer()
	})
	// Nested, single child set: every delegation lands in one lane, the
	// deepest per-lane streaming case.
	b.Run("nested-1set", func(b *testing.B) {
		b.ReportAllocs()
		rt := prometheus.Init(prometheus.WithDelegates(4), prometheus.Recursive())
		defer rt.Terminate()
		w := prometheus.NewWritable(rt, 0)
		n := b.N
		rt.BeginIsolation()
		b.ResetTimer()
		w.Delegate(func(c *prometheus.Ctx, p *int) {
			nestedWaves(c, n, 1, []uint64{1001})
		})
		rt.EndIsolation()
		b.StopTimer()
	})
	// Canary for benchgate normalization: the same wrapper fast path with
	// the engine swapped out for inline execution — pure single-thread
	// machine speed, no queues, no goroutines.
	b.Run("sequential-inline", func(b *testing.B) {
		b.ReportAllocs()
		rt := prometheus.Init(prometheus.Sequential(), prometheus.Recursive())
		defer rt.Terminate()
		w := prometheus.NewWritable(rt, 0)
		rt.BeginIsolation()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Delegate(func(c *prometheus.Ctx, p *int) { *p++ })
		}
		b.StopTimer()
		rt.EndIsolation()
	})
}
