package prometheus_test

// Benchmarks regenerating the paper's evaluation, one family per table or
// figure. Each sub-benchmark reports ns/op for one full run of a benchmark
// implementation, so paper-style speedups fall out as ratios of Seq to
// CP/SS times:
//
//	BenchmarkFig4/<app>/{Seq,CP16,SS15}    - Figure 4 (16-context config)
//	BenchmarkFig5a/<app>                   - Figure 5a instrumented SS runs
//	BenchmarkFig5b/<app>/{S,M}             - Figure 5b input scaling
//	BenchmarkFig6/<app>/d<N>               - Figure 6 delegate-count sweep
//	BenchmarkAblation/*                    - design-choice studies
//
// The ssbench command prints the same data as formatted tables; these
// benches integrate with standard Go tooling (-bench, -benchmem,
// benchstat). Inputs are the Small class so `go test -bench=.` stays
// minutes-scale; ssbench defaults to Medium.

import (
	"sync"
	"testing"

	prometheus "repro"
	"repro/internal/harness"
	"repro/internal/workload"
)

// instCache loads each benchmark input once per (app, size).
var (
	instMu    sync.Mutex
	instCache = map[string]*harness.Instance{}
)

func load(b *testing.B, app harness.App, size workload.SizeClass) *harness.Instance {
	b.Helper()
	instMu.Lock()
	defer instMu.Unlock()
	key := app.Name + "/" + size.String()
	inst, ok := instCache[key]
	if !ok {
		inst = app.Load(size)
		instCache[key] = inst
	}
	return inst
}

// BenchmarkFig4 measures the three implementations of every benchmark at
// the paper's 16-context configuration (barcelona-16): CP with 16 workers,
// SS with 15 delegates + the program context.
func BenchmarkFig4(b *testing.B) {
	for _, app := range harness.Apps {
		app := app
		b.Run(app.Name+"/Seq", func(b *testing.B) {
			inst := load(b, app, workload.Small)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inst.Seq()
			}
		})
		b.Run(app.Name+"/CP16", func(b *testing.B) {
			inst := load(b, app, workload.Small)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inst.CP(16)
			}
		})
		b.Run(app.Name+"/SS15", func(b *testing.B) {
			inst := load(b, app, workload.Small)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inst.SS(15)
			}
		})
	}
}

// BenchmarkFig5a runs the instrumented SS implementations and reports the
// epoch-time breakdown as custom metrics (fractions of total time), the
// data behind Figure 5a.
func BenchmarkFig5a(b *testing.B) {
	for _, app := range harness.Apps {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			inst := load(b, app, workload.Small)
			b.ResetTimer()
			var agg, iso, red, tot float64
			for i := 0; i < b.N; i++ {
				st := inst.SS(15)
				agg += float64(st.Aggregation)
				iso += float64(st.Isolation)
				red += float64(st.Reduction)
				tot += float64(st.Total())
			}
			if tot > 0 {
				b.ReportMetric(100*agg/tot, "%aggregation")
				b.ReportMetric(100*iso/tot, "%isolation")
				b.ReportMetric(100*red/tot, "%reduction")
			}
		})
	}
}

// BenchmarkFig5b measures SS at 15 delegates across input size classes
// (S and M here; ssbench -experiment fig5b adds L).
func BenchmarkFig5b(b *testing.B) {
	for _, app := range harness.Apps {
		app := app
		for _, size := range []workload.SizeClass{workload.Small, workload.Medium} {
			size := size
			b.Run(app.Name+"/"+size.String(), func(b *testing.B) {
				inst := load(b, app, size)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					inst.SS(15)
				}
			})
		}
	}
}

// BenchmarkFig6 sweeps the delegate count, the data behind Figure 6's
// scaling curves.
func BenchmarkFig6(b *testing.B) {
	for _, app := range harness.Apps {
		app := app
		for _, d := range []int{1, 2, 4, 8, 15} {
			d := d
			b.Run(app.Name+"/d"+itoa(d), func(b *testing.B) {
				inst := load(b, app, workload.Small)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					inst.SS(d)
				}
			})
		}
	}
}

// BenchmarkAblation covers the design-choice studies: scheduling policy,
// program share, queue capacity (on freqmine, the most skew-prone
// benchmark) and the kmeans formulation comparison.
func BenchmarkAblation(b *testing.B) {
	fm, _ := harness.AppByName("freqmine")
	b.Run("policy/static-mod", func(b *testing.B) {
		inst := load(b, fm, workload.Small)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inst.SSOpt(15, prometheus.WithPolicy(prometheus.StaticMod))
		}
	})
	b.Run("policy/least-loaded", func(b *testing.B) {
		inst := load(b, fm, workload.Small)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inst.SSOpt(15, prometheus.WithPolicy(prometheus.LeastLoaded))
		}
	})
	for _, share := range []int{0, 1, 2} {
		share := share
		b.Run("program-share/"+itoa(share), func(b *testing.B) {
			inst := load(b, fm, workload.Small)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inst.SSOpt(15, prometheus.WithProgramShare(share))
			}
		})
	}
	for _, cap := range []int{8, 1024, 16384} {
		cap := cap
		b.Run("queue-capacity/"+itoa(cap), func(b *testing.B) {
			inst := load(b, fm, workload.Small)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inst.SSOpt(15, prometheus.WithQueueCapacity(cap))
			}
		})
	}
	km, _ := harness.AppByName("kmeans")
	b.Run("kmeans/reduction", func(b *testing.B) {
		inst := load(b, km, workload.Small)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inst.SS(15)
		}
	})
	b.Run("kmeans/naive", func(b *testing.B) {
		inst := load(b, km, workload.Small)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inst.Variants["naive"](15)
		}
	})
}

// BenchmarkRuntime measures the core runtime primitives in isolation:
// delegation throughput (the paper's overhead discussion, §5) and epoch
// transition cost.
func BenchmarkRuntime(b *testing.B) {
	b.Run("delegate-throughput", func(b *testing.B) {
		rt := prometheus.Init(prometheus.WithDelegates(4))
		defer rt.Terminate()
		w := prometheus.NewWritable(rt, 0)
		rt.BeginIsolation()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Delegate(func(c *prometheus.Ctx, p *int) { *p++ })
		}
		b.StopTimer()
		rt.EndIsolation()
	})
	b.Run("epoch-transition", func(b *testing.B) {
		rt := prometheus.Init(prometheus.WithDelegates(4))
		defer rt.Terminate()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.BeginIsolation()
			rt.EndIsolation()
		}
	})
	b.Run("sync-roundtrip", func(b *testing.B) {
		rt := prometheus.Init(prometheus.WithDelegates(4))
		defer rt.Terminate()
		w := prometheus.NewWritable(rt, 0)
		rt.BeginIsolation()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Delegate(func(c *prometheus.Ctx, p *int) { *p++ })
			w.Call(func(p *int) {})
		}
		b.StopTimer()
		rt.EndIsolation()
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
