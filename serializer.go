package prometheus

// Serializer computes the serialization set for an operation on a wrapped
// object (paper §2.1). It receives the wrapper's instance number and the
// object, and returns the set id. Serializers run in the program context at
// the delegation point and must be fast and pure.
//
// A serializer must map all operations on the same writable domain to the
// same set; mapping different domains to the same set is legal (and
// sometimes desirable, e.g. for locality) but reduces concurrency.
type Serializer[T any] func(instance uint64, obj *T) uint64

// SequenceSerializer serializes on the wrapper's instance number (the
// paper's sequence serializer). Instance numbers are small and consecutive,
// so sets spread evenly across virtual delegates under the modulus policy.
func SequenceSerializer[T any]() Serializer[T] {
	return func(instance uint64, _ *T) uint64 { return instance }
}

// ObjectSerializer serializes on a scrambled object identity, the analogue
// of the paper's object (address) serializer: distinct objects map to
// well-spread, address-like set ids.
func ObjectSerializer[T any]() Serializer[T] {
	return func(instance uint64, _ *T) uint64 { return Mix64(instance) }
}

// Serializable is implemented by types that carry their own serialization
// identity (the paper's internal serializer written as a virtual method).
type Serializable interface {
	SerialID() uint64
}

// InternalSerializer serializes on the object's own SerialID method.
func InternalSerializer[T Serializable]() Serializer[T] {
	return func(_ uint64, obj *T) uint64 { return (*obj).SerialID() }
}

// NullSerializer marks a wrapper whose serialization sets are always
// supplied externally at the delegation site with DelegateTo (the paper's
// null serializer). Calling Delegate on such a wrapper is an error.
func NullSerializer[T any]() Serializer[T] { return nil }

// Mix64 is a SplitMix64 finalizer: a cheap bijective scrambler used to turn
// consecutive ids into address-like identities, and generally useful for
// hashing user keys into serialization sets.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// StringSet hashes a string to a serialization set id (FNV-1a). Useful for
// external serializers keyed by names.
func StringSet(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
