package prometheus

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// This file holds the central model property from paper §2: parallel
// execution with serialization sets is deterministic and indistinguishable
// from sequential execution of the same operations. We generate random
// "programs" (sequences of operations on a pool of objects, with random
// serializer choices, interleaved Calls, and multiple epochs) and assert the
// final state equals the sequential-mode run, across several runtime shapes.

// opKind enumerates the operation alphabet of a generated program.
type opKind uint8

const (
	opDelegateAdd opKind = iota // delegate: obj += k
	opDelegateMul               // delegate: obj = obj*31 + k
	opCallRead                  // program context reads (forces reclaim)
	opEpochBreak                // end + begin isolation
	numOpKinds
)

type progOp struct {
	kind opKind
	obj  int
	arg  int64
}

// genProgram builds a random program over nObjs objects.
func genProgram(r *rand.Rand, nObjs, nOps int) []progOp {
	ops := make([]progOp, nOps)
	for i := range ops {
		ops[i] = progOp{
			kind: opKind(r.Intn(int(numOpKinds))),
			obj:  r.Intn(nObjs),
			arg:  int64(r.Intn(1000)),
		}
	}
	return ops
}

// runProgram executes a generated program on a runtime built with opts and
// returns the final object states plus the values observed by opCallRead
// (observational determinism, not just final-state determinism).
func runProgram(ops []progOp, nObjs int, opts ...Option) ([]int64, []int64) {
	rt := Init(opts...)
	defer rt.Terminate()
	objs := make([]*Writable[int64], nObjs)
	for i := range objs {
		objs[i] = NewWritable(rt, int64(i))
	}
	var observed []int64
	rt.BeginIsolation()
	for _, op := range ops {
		w := objs[op.obj]
		arg := op.arg
		switch op.kind {
		case opDelegateAdd:
			w.Delegate(func(c *Ctx, p *int64) { *p += arg })
		case opDelegateMul:
			w.Delegate(func(c *Ctx, p *int64) { *p = *p*31 + arg })
		case opCallRead:
			observed = append(observed, Call(w, func(p *int64) int64 { return *p }))
		case opEpochBreak:
			rt.EndIsolation()
			rt.BeginIsolation()
		}
	}
	rt.EndIsolation()
	final := make([]int64, nObjs)
	for i, w := range objs {
		final[i] = Call(w, func(p *int64) int64 { return *p })
	}
	return final, observed
}

func TestDeterminismMatchesSequential(t *testing.T) {
	shapes := [][]Option{
		{Sequential()},
		{WithDelegates(1)},
		{WithDelegates(3)},
		{WithDelegates(8)},
		{WithDelegates(4), WithProgramShare(2)},
		{WithDelegates(4), WithVirtualDelegates(5)},
		{WithDelegates(4), WithPolicy(LeastLoaded)},
		{WithDelegates(4), WithQueueCapacity(2)}, // tiny queues force blocking paths
	}
	r := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 8; trial++ {
		nObjs := 1 + r.Intn(12)
		ops := genProgram(r, nObjs, 400)
		wantFinal, wantObs := runProgram(ops, nObjs, Sequential())
		for si, shape := range shapes {
			gotFinal, gotObs := runProgram(ops, nObjs, shape...)
			if !reflect.DeepEqual(gotFinal, wantFinal) {
				t.Fatalf("trial %d shape %d: final state diverged\n got %v\nwant %v", trial, si, gotFinal, wantFinal)
			}
			if !reflect.DeepEqual(gotObs, wantObs) {
				t.Fatalf("trial %d shape %d: observed reads diverged\n got %v\nwant %v", trial, si, gotObs, wantObs)
			}
		}
	}
}

// TestDeterminismRepeatedRunsIdentical re-runs the same parallel program and
// requires bit-identical results (no schedule dependence).
func TestDeterminismRepeatedRunsIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	ops := genProgram(r, 8, 600)
	first, firstObs := runProgram(ops, 8, WithDelegates(6))
	for i := 0; i < 5; i++ {
		again, againObs := runProgram(ops, 8, WithDelegates(6))
		if !reflect.DeepEqual(first, again) || !reflect.DeepEqual(firstObs, againObs) {
			t.Fatalf("run %d produced different results", i)
		}
	}
}

// TestQuickDeterminism drives the same property through testing/quick's
// input generation.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed int64, nObjsRaw uint8) bool {
		nObjs := int(nObjsRaw%10) + 1
		r := rand.New(rand.NewSource(seed))
		ops := genProgram(r, nObjs, 150)
		want, wantObs := runProgram(ops, nObjs, Sequential())
		got, gotObs := runProgram(ops, nObjs, WithDelegates(5))
		return reflect.DeepEqual(want, got) && reflect.DeepEqual(wantObs, gotObs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSharedSetSerializesDisjointObjects checks the coarsening behaviour
// described in §2.1: mapping different objects to the same set is legal and
// serializes their operations with respect to each other.
func TestSharedSetSerializesDisjointObjects(t *testing.T) {
	rt := newRT(t, WithDelegates(4))
	a := NewWritableSer(rt, []int{}, NullSerializer[[]int]())
	b := NewWritableSer(rt, []int{}, NullSerializer[[]int]())
	shared := &[]int{} // trace of interleaving across both objects
	rt.BeginIsolation()
	for i := 0; i < 200; i++ {
		i := i
		// Same set 42 for both: all four appends below are totally ordered,
		// so writes to the captured shared trace are race-free.
		a.DelegateTo(42, func(c *Ctx, s *[]int) { *s = append(*s, i); *shared = append(*shared, i*2) })
		b.DelegateTo(42, func(c *Ctx, s *[]int) { *s = append(*s, i); *shared = append(*shared, i*2+1) })
	}
	rt.EndIsolation()
	if len(*shared) != 400 {
		t.Fatalf("trace length = %d, want 400", len(*shared))
	}
	for i, v := range *shared {
		if v != i {
			t.Fatalf("interleaving not program-ordered at %d: %d", i, v)
		}
	}
}
